"""Tests for the repro-lint static analyzer (repro.lintkit).

Each rule gets at least one seeded-violation fixture (the rule must
fire) and one clean fixture (it must stay quiet), plus scope checks.
The baseline round-trip, inline suppression grammar, registry errors,
CLI exit codes, and the meta-test (the shipped tree is lint-clean
under the shipped baseline) are covered at the end.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.lintkit import (
    Baseline,
    Rule,
    all_rules,
    analyze_source,
    iter_python_files,
    module_name_for_path,
    register,
    run,
    select_rules,
    write_baseline,
)
from repro.lintkit.baseline import TODO_JUSTIFICATION
from repro.lintkit.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[1]


def findings_for(source: str, module: str = "repro.sim.fake"):
    return analyze_source(textwrap.dedent(source), path="fake.py", module=module)


def rule_ids(source: str, module: str = "repro.sim.fake"):
    return [f.rule for f in findings_for(source, module)]


# ---------------------------------------------------------------------------
# Determinism rules (REPRO101-104)


def test_repro101_flags_wall_clock_reads():
    src = """\
        import time

        def stamp():
            return time.time()
    """
    assert rule_ids(src) == ["REPRO101"]


def test_repro101_resolves_import_aliases():
    src = """\
        from time import perf_counter as clock

        def stamp():
            return clock()
    """
    assert rule_ids(src) == ["REPRO101"]


def test_repro101_ignores_out_of_scope_modules():
    src = """\
        import time

        def stamp():
            return time.time()
    """
    assert rule_ids(src, module="repro.scripts.fake") == []


def test_repro101_flags_wall_clock_duration_arithmetic_in_service():
    src = """\
        import time

        def elapsed(started):
            return time.time() - started

        def expired(deadline):
            return time.time() >= deadline
    """
    assert rule_ids(src, module="repro.service.fake") == ["REPRO101", "REPRO101"]


def test_repro101_allows_display_stamps_and_monotonic_durations_in_service():
    src = """\
        import time

        def stamp():
            return time.time()

        def elapsed(started_monotonic):
            return time.monotonic() - started_monotonic
    """
    assert rule_ids(src, module="repro.service.fake") == []


def test_repro102_flags_global_random_calls():
    src = """\
        import random

        def jitter():
            return random.random()
    """
    assert rule_ids(src) == ["REPRO102"]


def test_repro102_allows_seeded_random_instance():
    src = """\
        import random

        def make_rng(seed):
            return random.Random(seed)
    """
    assert rule_ids(src) == []


def test_repro102_flags_unseeded_random_instance():
    src = """\
        import random

        def make_rng():
            return random.Random()
    """
    assert rule_ids(src) == ["REPRO102"]


def test_repro103_flags_numpy_global_prng():
    src = """\
        import numpy as np

        def noise(n):
            return np.random.rand(n)
    """
    assert rule_ids(src) == ["REPRO103"]


def test_repro103_flags_unseeded_default_rng():
    src = """\
        import numpy as np

        def make_rng():
            return np.random.default_rng()
    """
    assert rule_ids(src) == ["REPRO103"]


def test_repro103_allows_seeded_default_rng():
    src = """\
        import numpy as np

        def make_rng(seed):
            return np.random.default_rng(seed)
    """
    assert rule_ids(src) == []


def test_repro103_covers_expfw_scope():
    src = """\
        import numpy as np

        def subsample(points):
            return np.random.shuffle(points)
    """
    assert rule_ids(src, module="repro.expfw.fake") == ["REPRO103"]


def test_repro103_allows_seeded_generator_in_expfw():
    src = """\
        import numpy as np

        def subsample(points, seed):
            rng = np.random.default_rng(seed)
            return rng.permutation(len(points))
    """
    assert rule_ids(src, module="repro.expfw.fake") == []


def test_expfw_scope_skips_non_prng_determinism_rules():
    # Only REPRO103 extends into repro.expfw: the driver legitimately
    # reads wall clocks for elapsed/display stamps.
    src = """\
        import time

        def stamp():
            return time.time()
    """
    assert rule_ids(src, module="repro.expfw.fake") == []


def test_repro104_flags_set_iteration():
    src = """\
        def visit(items):
            for item in set(items):
                yield item
    """
    assert rule_ids(src) == ["REPRO104"]


def test_repro104_flags_set_comprehension_in_generator():
    src = """\
        def ids(nodes):
            return [n.id for n in {n for n in nodes}]
    """
    assert rule_ids(src) == ["REPRO104"]


def test_repro104_sees_through_order_preserving_wrappers():
    src = """\
        def visit(items):
            for item in list(set(items)):
                yield item
    """
    assert rule_ids(src) == ["REPRO104"]


def test_repro104_allows_sorted_set_iteration():
    src = """\
        def visit(items):
            for item in sorted(set(items)):
                yield item
    """
    assert rule_ids(src) == []


# ---------------------------------------------------------------------------
# Cycle-accounting rules (REPRO201-202)


def test_repro201_flags_float_equality_on_cycles():
    src = """\
        def same(result, expected_cycles):
            return result.cycles == expected_cycles
    """
    assert rule_ids(src) == ["REPRO201"]


def test_repro201_flags_not_equal_on_latency():
    src = """\
        def drifted(latency, reference):
            return latency != reference
    """
    assert rule_ids(src) == ["REPRO201"]


def test_repro201_allows_ordering_comparisons():
    src = """\
        def late(finish, deadline):
            return finish > deadline
    """
    assert rule_ids(src) == []


def test_repro201_allows_equality_on_non_cycle_names():
    src = """\
        def same_name(scene, expected):
            return scene.name == expected
    """
    assert rule_ids(src) == []


def test_repro201_exempts_none_comparisons():
    src = """\
        def unset(cycles):
            return cycles == None
    """
    assert rule_ids(src) == []


def test_repro202_flags_division_into_cycle_name():
    src = """\
        def per_node(total, n):
            cycles = total / n
            return cycles
    """
    assert rule_ids(src) == ["REPRO202"]


def test_repro202_flags_augmented_division():
    src = """\
        def halve(state):
            state.stall_cycles /= 2
            return state
    """
    assert rule_ids(src) == ["REPRO202"]


def test_repro202_allows_floor_division():
    src = """\
        def per_node(total, n):
            cycles = total // n
            return cycles
    """
    assert rule_ids(src) == []


def test_repro202_allows_division_into_ratio_names():
    src = """\
        def utilisation(busy, total):
            ratio = busy / total
            return ratio
    """
    assert rule_ids(src) == []


def test_repro202_does_not_descend_into_lambdas():
    src = """\
        def scaled(values, n):
            cycle_fn = lambda v: v / n
            return cycle_fn
    """
    assert rule_ids(src) == []


# ---------------------------------------------------------------------------
# Observability-hygiene rules (REPRO301-302)


def test_repro301_flags_chained_recorder_accessor():
    src = """\
        from repro.obs.recorder import recorder

        def hot(track, name, start, end):
            recorder().span(track, name, start, end)
    """
    assert rule_ids(src) == ["REPRO301"]


def test_repro301_flags_accessor_inside_loop():
    src = """\
        from repro.obs.recorder import recorder

        def hot(items):
            for item in items:
                rec = recorder()
    """
    assert rule_ids(src) == ["REPRO301"]


def test_repro301_allows_hoisted_resolution():
    src = """\
        from repro.obs.recorder import recorder

        def hot(items):
            rec = recorder()
            for item in items:
                rec.instant(("sim", "node"), "tick")
    """
    assert rule_ids(src) == []


def test_repro302_flags_bad_metric_name():
    src = """\
        def instrument(registry):
            return registry.counter("CacheMisses")
    """
    assert rule_ids(src, module="repro.obs.fake") == ["REPRO302"]


def test_repro302_flags_single_segment_name():
    src = """\
        def instrument(registry):
            return registry.gauge("depth")
    """
    assert rule_ids(src, module="repro.obs.fake") == ["REPRO302"]


def test_repro302_flags_bad_fstring_fragment():
    src = """\
        def instrument(registry, node):
            return registry.histogram(f"Node-{node}.depth")
    """
    assert rule_ids(src, module="repro.obs.fake") == ["REPRO302"]


def test_repro302_allows_dotted_lower_names():
    src = """\
        def instrument(registry, node):
            registry.counter("cache.misses")
            registry.gauge(f"fifo.{node}.depth")
            return registry.histogram("bus.transfer_cycles")
    """
    assert rule_ids(src, module="repro.obs.fake") == []


# ---------------------------------------------------------------------------
# Concurrency rules (REPRO401-402)


def test_repro401_flags_bare_except():
    src = """\
        def step(job):
            try:
                job.run()
            except:
                pass
    """
    assert rule_ids(src, module="repro.service.fake") == ["REPRO401"]


def test_repro401_allows_typed_except():
    src = """\
        def step(job):
            try:
                job.run()
            except Exception:
                pass
    """
    assert rule_ids(src, module="repro.service.fake") == []


def test_repro401_scoped_to_service_layer():
    src = """\
        def step(job):
            try:
                job.run()
            except:
                pass
    """
    assert rule_ids(src, module="repro.core.fake") == []


_LOCKED_CLASS = """\
    class Scheduler:
        def __init__(self, lock):
            self._lock = lock
            self.jobs = []

        def submit(self, job):
            with self._lock:
                self.jobs.append(job)

        def drop(self):
            {drop_body}
"""


def test_repro402_flags_unlocked_mutation():
    src = _LOCKED_CLASS.format(drop_body="self.jobs.pop()")
    assert rule_ids(src, module="repro.service.fake") == ["REPRO402"]


def test_repro402_allows_locked_mutation():
    src = textwrap.dedent(
        """\
        class Scheduler:
            def submit(self, job):
                with self._lock:
                    self.jobs.append(job)

            def drop(self):
                with self._lock:
                    self.jobs.pop()
        """
    )
    assert analyze_source(src, module="repro.service.fake") == []


def test_repro402_exempts_init():
    # ``self.jobs = []`` in __init__ is unlocked but never flagged.
    src = _LOCKED_CLASS.format(drop_body="pass")
    assert rule_ids(src, module="repro.service.fake") == []


def test_repro402_exempts_locked_suffix_methods():
    src = textwrap.dedent(
        """\
        class Scheduler:
            def submit(self, job):
                with self._lock:
                    self.jobs.append(job)

            def drop_locked(self):
                self.jobs.pop()
        """
    )
    assert analyze_source(src, module="repro.service.fake") == []


def test_repro402_exempts_holds_the_lock_docstring():
    src = textwrap.dedent(
        '''\
        class Scheduler:
            def submit(self, job):
                with self._lock:
                    self.jobs.append(job)

            def drop(self):
                """Pop one job; the caller holds the lock."""
                self.jobs.pop()
        '''
    )
    assert analyze_source(src, module="repro.service.fake") == []


# ---------------------------------------------------------------------------
# Batch-core rules (REPRO501)


def test_repro501_flags_for_loop_over_column_attribute():
    src = """\
        def misses(fragments):
            out = []
            for value in fragments.u:
                out.append(value * 2.0)
            return out
    """
    assert rule_ids(src, module="repro.texture.filtering") == ["REPRO501"]


def test_repro501_flags_zip_and_range_len_spellings():
    src = """\
        def walk(buf):
            for u, v in zip(buf.u, buf.v):
                yield u + v

        def walk_indexed(buf):
            for index in range(len(buf.x)):
                yield buf.x[index]
    """
    assert rule_ids(src, module="repro.raster.batch") == ["REPRO501", "REPRO501"]


def test_repro501_flags_column_dict_subscript_iteration():
    src = """\
        def drain(piece):
            return [value + 1 for value in piece["texture"]]
    """
    assert rule_ids(src, module="repro.cache.stream") == ["REPRO501"]


def test_repro501_flags_while_condition_on_column():
    src = """\
        def drain(buf):
            index = 0
            while index < len(buf.level):
                index += 1
    """
    assert rule_ids(src, module="repro.cache.batchlru") == ["REPRO501"]


def test_repro501_allows_chunk_and_setup_loops():
    src = """\
        def chunked(n, size):
            for start in range(0, n, size):
                yield start

        def join(pieces, names):
            return {name: [piece[name] for piece in pieces] for name in names}
    """
    assert rule_ids(src, module="repro.cache.stream") == []


def test_repro501_scoped_to_the_batch_perimeter():
    src = """\
        def reference(fragments):
            return [value * 2.0 for value in fragments.u]
    """
    assert rule_ids(src, module="repro.raster.raster") == []
    assert rule_ids(src, module="repro.cache.lru") == []


# ---------------------------------------------------------------------------
# The virtual-texturing modules join both perimeters


@pytest.mark.parametrize("module", ["repro.texture.pages", "repro.workloads.vt"])
def test_vt_modules_are_in_the_deterministic_scope(module):
    src = """\
        import time

        def stamp():
            return time.time()
    """
    assert rule_ids(src, module=module) == ["REPRO101"]


@pytest.mark.parametrize("module", ["repro.texture.pages", "repro.workloads.vt"])
def test_vt_modules_require_seeded_prngs(module):
    src = """\
        import numpy

        def shuffle_pages(pages):
            return numpy.random.permutation(pages)
    """
    assert rule_ids(src, module=module) == ["REPRO103"]


def test_vt_modules_forbid_set_order_dependence():
    src = """\
        def evict_order(pages):
            return [page for page in set(pages)]
    """
    assert rule_ids(src, module="repro.texture.pages") == ["REPRO104"]


@pytest.mark.parametrize("module", ["repro.texture.pages", "repro.workloads.vt"])
def test_vt_modules_are_in_the_batch_perimeter(module):
    src = """\
        def faults(fragments, resident):
            return [u for u in fragments.u if u not in resident]
    """
    assert rule_ids(src, module=module) == ["REPRO501"]


def test_vt_chunked_observe_loop_is_clean():
    src = """\
        def observe_frames(table, lines, n, chunk):
            for start in range(0, n, chunk):
                table.observe(lines[start : start + chunk])
    """
    assert rule_ids(src, module="repro.workloads.vt") == []


# ---------------------------------------------------------------------------
# Inline suppression


def test_inline_ignore_with_reason_suppresses():
    src = """\
        import time

        def stamp():
            return time.time()  # repro-lint: ignore[REPRO101] -- test clock shim
    """
    assert rule_ids(src) == []


def test_inline_ignore_only_covers_named_rule():
    src = """\
        import time

        def stamp():
            return time.time()  # repro-lint: ignore[REPRO104] -- wrong rule
    """
    assert rule_ids(src) == ["REPRO101"]


def test_inline_ignore_without_reason_is_rejected():
    src = """\
        import time

        def stamp():
            return time.time()  # repro-lint: ignore[REPRO101]
    """
    with pytest.raises(ConfigurationError, match="needs a reason"):
        findings_for(src)


# ---------------------------------------------------------------------------
# Registry


def test_registry_rejects_duplicate_rule_id():
    with pytest.raises(ConfigurationError, match="duplicate rule id"):

        @register
        class Clash(Rule):  # noqa: F841 (registered for its side effect)
            id = "REPRO101"
            title = "clashes with the wall-clock rule"


def test_registry_rejects_missing_rule_id():
    with pytest.raises(ConfigurationError, match="has no id"):

        @register
        class Nameless(Rule):  # noqa: F841 (registered for its side effect)
            title = "no id"


def test_select_rules_rejects_unknown_ids():
    with pytest.raises(ConfigurationError, match="REPRO999"):
        select_rules(["REPRO999"])


def test_select_rules_narrows_the_active_set():
    rules = select_rules(["REPRO101", "REPRO402"])
    assert [rule.id for rule in rules] == ["REPRO101", "REPRO402"]


def test_all_rules_catalog_is_complete():
    ids = {rule.id for rule in all_rules()}
    assert ids >= {
        "REPRO101",
        "REPRO102",
        "REPRO103",
        "REPRO104",
        "REPRO201",
        "REPRO202",
        "REPRO301",
        "REPRO302",
        "REPRO401",
        "REPRO402",
        "REPRO501",
    }


def test_scope_matching_is_package_exact():
    # "repro.simulator" must not match the "repro.sim" scope prefix.
    src = """\
        import time

        def stamp():
            return time.time()
    """
    assert rule_ids(src, module="repro.simulator.fake") == []


# ---------------------------------------------------------------------------
# File walking and module naming


def _seed_violation_tree(root: Path) -> Path:
    pkg = root / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    bad = pkg / "bad.py"
    bad.write_text(
        "import time\n\n\ndef stamp():\n    return time.time()\n",
        encoding="utf-8",
    )
    (pkg / "__pycache__").mkdir()
    (pkg / "__pycache__" / "junk.py").write_text("import time\n", encoding="utf-8")
    return bad


def test_module_name_for_path_anchors_on_src():
    assert module_name_for_path("src/repro/sim/bad.py") == "repro.sim.bad"
    assert module_name_for_path("/abs/src/repro/core/machine.py") == "repro.core.machine"


def test_iter_python_files_skips_cache_dirs(tmp_path):
    bad = _seed_violation_tree(tmp_path)
    files = iter_python_files([tmp_path / "src"])
    assert files == [bad]


def test_iter_python_files_rejects_missing_paths(tmp_path):
    with pytest.raises(ConfigurationError, match="no such file"):
        iter_python_files([tmp_path / "nowhere"])


def test_run_finds_seeded_violation(tmp_path):
    _seed_violation_tree(tmp_path)
    report = run([tmp_path / "src"])
    assert not report.clean
    assert [f.rule for f in report.findings] == ["REPRO101"]
    assert report.files_checked == 1


# ---------------------------------------------------------------------------
# Baseline round-trip


def test_baseline_round_trip(tmp_path):
    _seed_violation_tree(tmp_path)
    findings = run([tmp_path / "src"]).findings
    baseline_path = tmp_path / "lint-baseline.txt"

    assert write_baseline(baseline_path, findings) == 1

    # Fresh entries carry the TODO placeholder and must not load.
    with pytest.raises(ConfigurationError, match="TODO"):
        Baseline.load(baseline_path)

    justified = baseline_path.read_text(encoding="utf-8").replace(
        TODO_JUSTIFICATION, "# fixture clock, exercised only by tests"
    )
    baseline_path.write_text(justified, encoding="utf-8")

    baseline = Baseline.load(baseline_path)
    report = run([tmp_path / "src"], baseline=baseline)
    assert report.clean
    assert len(report.suppressed) == 1
    assert report.stale_entries == []


def test_baseline_entry_goes_stale_when_code_changes(tmp_path):
    bad = _seed_violation_tree(tmp_path)
    baseline_path = tmp_path / "lint-baseline.txt"
    write_baseline(baseline_path, run([tmp_path / "src"]).findings)
    justified = baseline_path.read_text(encoding="utf-8").replace(
        TODO_JUSTIFICATION, "# fixture clock, exercised only by tests"
    )
    baseline_path.write_text(justified, encoding="utf-8")

    # Fix the violation: the entry must surface as stale, not linger.
    bad.write_text("def stamp(clock):\n    return clock.now\n", encoding="utf-8")
    report = run([tmp_path / "src"], baseline=Baseline.load(baseline_path))
    assert report.clean
    assert len(report.stale_entries) == 1


def test_baseline_rejects_blank_justification(tmp_path):
    baseline_path = tmp_path / "lint-baseline.txt"
    baseline_path.write_text(
        "REPRO101\tsrc/repro/sim/bad.py\treturn time.time()\t#\n", encoding="utf-8"
    )
    with pytest.raises(ConfigurationError, match="justification"):
        Baseline.load(baseline_path)


def test_baseline_rejects_malformed_lines(tmp_path):
    baseline_path = tmp_path / "lint-baseline.txt"
    baseline_path.write_text("REPRO101 no tabs here\n", encoding="utf-8")
    with pytest.raises(ConfigurationError, match="4 tab-separated fields"):
        Baseline.load(baseline_path)


def test_baseline_matches_by_path_suffix(tmp_path):
    # A repo-relative entry suppresses findings reported with absolute
    # paths (runs started from different directories share one file).
    _seed_violation_tree(tmp_path)
    findings = run([tmp_path / "src"]).findings
    snippet = findings[0].snippet
    baseline_path = tmp_path / "lint-baseline.txt"
    baseline_path.write_text(
        f"REPRO101\tsrc/repro/sim/bad.py\t{snippet}\t# fixture clock\n",
        encoding="utf-8",
    )
    report = run([tmp_path / "src"], baseline=Baseline.load(baseline_path))
    assert report.clean
    assert len(report.suppressed) == 1


# ---------------------------------------------------------------------------
# CLI


def test_cli_exit_codes(tmp_path, monkeypatch, capsys):
    _seed_violation_tree(tmp_path)
    monkeypatch.chdir(tmp_path)

    assert lint_main(["src"]) == 1
    out = capsys.readouterr().out
    assert "REPRO101" in out and out.strip().endswith("1 file(s) checked")

    assert lint_main(["--list-rules"]) == 0
    assert lint_main(["src", "--baseline", "missing.txt"]) == 2


def test_cli_write_baseline_then_clean(tmp_path, monkeypatch, capsys):
    _seed_violation_tree(tmp_path)
    monkeypatch.chdir(tmp_path)

    assert lint_main(["src", "--write-baseline"]) == 0
    baseline_path = tmp_path / "lint-baseline.txt"
    justified = baseline_path.read_text(encoding="utf-8").replace(
        TODO_JUSTIFICATION, "# fixture clock, exercised only by tests"
    )
    baseline_path.write_text(justified, encoding="utf-8")

    # The default baseline is picked up from the working directory.
    capsys.readouterr()
    assert lint_main(["src"]) == 0
    assert "OK:" in capsys.readouterr().out


def test_cli_json_format(tmp_path, monkeypatch, capsys):
    import json

    _seed_violation_tree(tmp_path)
    monkeypatch.chdir(tmp_path)
    assert lint_main(["src", "--format", "json", "--no-baseline"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    assert payload["findings"][0]["rule"] == "REPRO101"


def test_cli_select_narrows_rules(tmp_path, monkeypatch, capsys):
    _seed_violation_tree(tmp_path)
    monkeypatch.chdir(tmp_path)
    assert lint_main(["src", "--select", "REPRO104"]) == 0
    assert lint_main(["src", "--select", "NOPE"]) == 2


# ---------------------------------------------------------------------------
# Meta-test: the shipped tree is clean under the shipped baseline.


def test_src_tree_is_lint_clean():
    baseline = Baseline.load(REPO_ROOT / "lint-baseline.txt")
    report = run([REPO_ROOT / "src"], baseline=baseline)
    assert report.findings == [], "\n".join(f.render() for f in report.findings)
    assert report.stale_entries == [], "stale baseline entries: " + "; ".join(
        entry.render() for entry in report.stale_entries
    )

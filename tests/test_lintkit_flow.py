"""Tests for the project-wide dataflow engine (repro.lintkit.flow)
and the rule families built on it (REPRO601-603, REPRO411/412,
REPRO111), plus the baseline --prune machinery and the --project CLI.

Three layers:

* engine unit tests over in-memory :class:`Project` objects (symbol
  resolution, call graph, label-flow summaries, taint propagation);
* fixture-package tests driving ``run(project=True)`` over the
  miniature trees in ``tests/lintkit_fixtures/`` (one polarity per
  package — see its README);
* seeded-bug meta-tests: copy real source out of ``src/``, delete or
  append the exact bug shape, and assert the rule catches it —
  proving the wall would have caught PR 4's unkeyed ``translator``
  and PR 7's unlocked lease scan.
"""

from __future__ import annotations

import ast
import re
import shutil
import textwrap
import time
from pathlib import Path

import pytest

from repro.lintkit import Baseline, run
from repro.lintkit.baseline import prune_baseline
from repro.lintkit.cli import main as lint_main
from repro.lintkit.context import ModuleContext
from repro.lintkit.flow import Project, project_for
from repro.lintkit.flow.summaries import (
    analyze_function,
    expression_labels,
)
from repro.lintkit.flow.taint import RNG, WALL_CLOCK

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "lintkit_fixtures"


def make_project(**modules: str) -> Project:
    """In-memory project: ``make_project(**{"repro.a": "def f(): ..."})``."""
    contexts = [
        ModuleContext.from_source(
            textwrap.dedent(source), module.replace(".", "/") + ".py", module
        )
        for module, source in modules.items()
    ]
    return Project(contexts)


def fixture_findings(name: str, select):
    report = run([FIXTURES / name / "src"], project=True, select=select)
    return report.findings


# ---------------------------------------------------------------------------
# Symbol table + call graph


def test_symbols_index_functions_classes_and_methods():
    project = make_project(
        **{
            "repro.a": """\
            class Box:
                size: int

                def volume(self, depth):
                    return self.size * depth

            def free(x, *rest, **opts):
                return x
            """
        }
    )
    free = project.symbols.function("repro.a.free")
    assert free.params == ("x", "rest", "opts")
    volume = project.symbols.function("repro.a.Box.volume")
    assert volume.params == ("depth",)  # self dropped
    assert project.symbols.classes["repro.a.Box"].fields == ("size",)


def test_callgraph_resolves_imports_self_calls_and_bare_names():
    project = make_project(
        **{
            "repro.helpers": """\
            def shared(v):
                return v
            """,
            "repro.a": """\
            from repro.helpers import shared

            def local(v):
                return shared(v)

            def entry(v):
                return local(v)

            class Runner:
                def _step(self, v):
                    return entry(v)

                def go(self, v):
                    return self._step(v)
            """,
        }
    )
    graph = project.callgraph
    assert graph.callees("repro.a.local") == ["repro.helpers.shared"]
    assert graph.callees("repro.a.entry") == ["repro.a.local"]  # bare name
    assert graph.callees("repro.a.Runner.go") == ["repro.a.Runner._step"]
    assert graph.callers("repro.helpers.shared") == ["repro.a.local"]


def test_constructor_calls_stay_unresolved_for_generous_flow():
    project = make_project(
        **{
            "repro.a": """\
            class Wrapper:
                def __init__(self, inner):
                    self.inner = inner

            def build(x):
                return Wrapper(x)
            """
        }
    )
    assert project.callgraph.callees("repro.a.build") == []
    # ...and generosity means the argument still flows through.
    summary = project.summaries.summary("repro.a.build")
    assert summary.params_to_return == {"x"}


# ---------------------------------------------------------------------------
# Flow summaries


def test_summary_tracks_only_params_that_reach_the_return():
    project = make_project(
        **{
            "repro.a": """\
            def pick(a, b):
                unused = b * 2
                return a
            """
        }
    )
    summary = project.summaries.summary("repro.a.pick")
    assert summary.params_to_return == {"a"}


def test_interprocedural_flow_maps_positional_and_keyword_args():
    project = make_project(
        **{
            "repro.a": """\
            def pick(a, b):
                return a

            def caller(x, y):
                return pick(x, y)

            def kw_caller(x, y):
                return pick(b=y, a=x)
            """
        }
    )
    assert project.summaries.summary("repro.a.caller").params_to_return == {"x"}
    assert project.summaries.summary("repro.a.kw_caller").params_to_return == {"x"}


def test_loop_carried_append_join_flow():
    project = make_project(
        **{
            "repro.a": """\
            def key_of(items, sep):
                parts = []
                for item in items:
                    parts.append(item)
                return sep.join(parts)
            """
        }
    )
    summary = project.summaries.summary("repro.a.key_of")
    assert summary.params_to_return == {"items", "sep"}


def test_branches_union_and_augassign_accumulates():
    project = make_project(
        **{
            "repro.a": """\
            def build(base, extra, flag):
                key = base
                if flag:
                    key += "/" + extra
                return key
            """
        }
    )
    summary = project.summaries.summary("repro.a.build")
    # Data flow only: both branches contribute (union join), but the
    # branch *condition* is an implicit flow and stays out — the same
    # reason JobSpec.kind needs a written exemption in the key table.
    assert summary.params_to_return == {"base", "extra"}


def test_recursive_function_summary_terminates():
    project = make_project(
        **{
            "repro.a": """\
            def count(n):
                if n <= 0:
                    return n
                return count(n - 1)
            """
        }
    )
    assert project.summaries.summary("repro.a.count").params_to_return == {"n"}


def test_wall_clock_taint_propagates_two_hops():
    project = make_project(
        **{
            "repro.a": """\
            import time

            def raw():
                return time.time()

            def tagged():
                return f"t{raw():.0f}"
            """
        }
    )
    assert project.summaries.summary("repro.a.raw").sources_to_return == {WALL_CLOCK}
    assert project.summaries.summary("repro.a.tagged").sources_to_return == {
        WALL_CLOCK
    }


def test_seeded_rng_construction_is_not_a_source():
    project = make_project(
        **{
            "repro.a": """\
            import numpy as np

            def seeded(seed):
                return np.random.default_rng(seed)

            def unseeded():
                return np.random.default_rng()
            """
        }
    )
    assert project.summaries.summary("repro.a.seeded").sources_to_return == set()
    assert project.summaries.summary("repro.a.unseeded").sources_to_return == {RNG}


def test_field_seeding_and_expression_labels():
    project = make_project(
        **{
            "repro.a": """\
            class Spec:
                scene: str
                scale: float

                def record(self):
                    return {"key": f"run/{self.scene}", "scale": self.scale}
            """
        }
    )
    info = project.symbols.function("repro.a.Spec.record")
    result = analyze_function(project, info, seed_fields=True)
    assert "field:scene" in result.returns and "field:scale" in result.returns
    key_expr = None
    for node in ast.walk(info.node):
        if isinstance(node, ast.Dict):
            key_expr = node.values[0]
    labels = expression_labels(project, info, key_expr, seed_fields=True)
    assert labels == {"field:scene"}


def test_project_for_caches_and_invalidates_on_edit(tmp_path):
    src = tmp_path / "src" / "repro" / "mod.py"
    src.parent.mkdir(parents=True)
    src.write_text("def f(x):\n    return x\n")
    first = project_for([src])
    assert project_for([src]) is first
    src.write_text("def f(x, y):\n    return x + y\n")
    second = project_for([src])
    assert second is not first
    assert second.symbols.function("repro.mod.f").params == ("x", "y")


# ---------------------------------------------------------------------------
# Rule fixtures: key completeness (REPRO601-603)


def test_repro601_quiet_when_every_knob_is_keyed():
    assert fixture_findings("keyflow_clean", ["REPRO601"]) == []


def test_repro601_fires_on_unkeyed_translator():
    findings = fixture_findings("keyflow_missing", ["REPRO601"])
    assert [f.rule for f in findings] == ["REPRO601"]
    assert "'translator'" in findings[0].message
    assert "routed_work" in findings[0].message


def test_repro602_quiet_when_every_field_is_keyed():
    assert fixture_findings("keyflow_jobspec_clean", ["REPRO602"]) == []


def test_repro602_fires_on_unkeyed_field():
    findings = fixture_findings("keyflow_jobspec_missing", ["REPRO602"])
    assert [f.rule for f in findings] == ["REPRO602"]
    assert "'processors'" in findings[0].message
    assert "field" in findings[0].message


def test_repro603_fires_on_key_ingredient_drop():
    findings = fixture_findings("keyflow_archive_missing", ["REPRO603"])
    assert [f.rule for f in findings] == ["REPRO603"]
    assert "'strategy'" in findings[0].message
    assert "trial_record" in findings[0].message


def test_keyflow_table_rot_is_flagged(tmp_path):
    # The module exists but the mapped function is gone: the table
    # itself has rotted and must move with the code.
    target = tmp_path / "src" / "repro" / "pipeline" / "stages.py"
    target.parent.mkdir(parents=True)
    target.write_text("def some_other_stage(x):\n    return x\n")
    report = run([tmp_path / "src"], project=True, select=["REPRO601"])
    assert len(report.findings) == 1
    assert "no longer exists" in report.findings[0].message


def test_keyflow_skips_trees_without_the_mapped_modules(tmp_path):
    target = tmp_path / "src" / "repro" / "unrelated.py"
    target.parent.mkdir(parents=True)
    target.write_text("def f(x):\n    return x\n")
    report = run(
        [tmp_path / "src"],
        project=True,
        select=["REPRO601", "REPRO602", "REPRO603"],
    )
    assert report.findings == []


# ---------------------------------------------------------------------------
# Rule fixtures: lock discipline (REPRO411/412)


def test_lockflow_quiet_when_scan_is_locked():
    assert fixture_findings("lockflow_clean", ["REPRO411", "REPRO412"]) == []


def test_repro412_fires_on_reaper_scan_outside_lock():
    findings = fixture_findings("lockflow_racy", ["REPRO411", "REPRO412"])
    assert [f.rule for f in findings] == ["REPRO412"]
    assert "_pending" in findings[0].message
    assert "_lock" in findings[0].message


def test_lock_detection_by_type_covers_condition_objects():
    # JobQueue-shaped: the guard is a Condition whose name never says
    # "lock"; inference must find it by constructor type.
    project = make_project(
        **{
            "repro.service.q": """\
            import threading

            class Q:
                def __init__(self):
                    self._cv = threading.Condition()
                    self._items = []

                def push(self, item):
                    with self._cv:
                        self._items.append(item)

                def pop_locked(self):
                    return self._items.pop()

                def size_racy(self):
                    return len(self._items)

                def drain(self):
                    with self._cv:
                        while self._items:
                            self.pop_locked()
            """
        }
    )
    from repro.lintkit.rules.lockflow import UnlockedReadRule

    findings = list(UnlockedReadRule().check_project(project))
    assert len(findings) == 1
    assert "_items" in findings[0].message and "_cv" in findings[0].message
    assert "size_racy" in project.by_module["repro.service.q"].line(
        findings[0].line - 1
    ) or findings[0].line > 0


def test_lock_context_flows_into_private_helpers():
    # A private helper called only under the lock inherits the lock
    # context (fixpoint) — its accesses are not findings.
    project = make_project(
        **{
            "repro.service.s": """\
            import threading

            class S:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._jobs = {}

                def submit(self, job):
                    with self._lock:
                        self._jobs[job] = True
                        self._bump(job)

                def _bump(self, job):
                    self._jobs[job] = False
            """
        }
    )
    from repro.lintkit.rules.lockflow import UnlockedReadRule, UnlockedWriteRule

    findings = list(UnlockedWriteRule().check_project(project)) + list(
        UnlockedReadRule().check_project(project)
    )
    assert findings == []


# ---------------------------------------------------------------------------
# Rule fixtures: interprocedural taint (REPRO111)


def test_taintflow_quiet_when_timestamp_is_a_parameter():
    assert fixture_findings("taintflow_clean", ["REPRO111"]) == []


def test_repro111_fires_on_two_hop_clock_laundering():
    findings = fixture_findings("taintflow_tainted", ["REPRO111"])
    assert [f.rule for f in findings] == ["REPRO111"]
    assert "elapsed_tag" in findings[0].message
    assert "wall clock" in findings[0].message


def test_project_findings_respect_inline_suppression(tmp_path):
    source = (FIXTURES / "lockflow_racy" / "src" / "repro" / "service" / "reaper.py")
    text = source.read_text().replace(
        "expired = [i for i, d in self._pending.items() if d <= now]",
        "expired = [i for i, d in self._pending.items() if d <= now]"
        "  # repro-lint: ignore[REPRO412] -- scan is advisory; expiry re-checks under the lock",
    )
    target = tmp_path / "src" / "repro" / "service" / "reaper.py"
    target.parent.mkdir(parents=True)
    target.write_text(text)
    report = run([tmp_path / "src"], project=True, select=["REPRO411", "REPRO412"])
    assert report.findings == []


# ---------------------------------------------------------------------------
# Seeded-bug meta-tests: the wall catches the historical bug shapes


def test_seeded_bug_dropping_translator_from_replay_key_is_caught(tmp_path):
    dst = tmp_path / "src" / "repro" / "pipeline"
    shutil.copytree(REPO_ROOT / "src" / "repro" / "pipeline", dst)
    stages = dst / "stages.py"
    text = stages.read_text()
    seeded = re.sub(
        r'\n\s*if translator_part != "direct":\n'
        r'\s*replay_key \+= f"/\{translator_part\}"\n',
        "\n",
        text,
    )
    assert seeded != text, "the translator keying moved; update this seed"
    stages.write_text(seeded)
    report = run([tmp_path / "src"], project=True, select=["REPRO601"])
    assert [f.rule for f in report.findings] == ["REPRO601"]
    assert "'translator'" in report.findings[0].message


def test_seeded_bug_unlocked_lease_mutation_is_caught(tmp_path):
    dst = tmp_path / "src" / "repro" / "service"
    dst.mkdir(parents=True)
    shutil.copy(REPO_ROOT / "src" / "repro" / "service" / "leases.py", dst)
    with open(dst / "leases.py", "a") as handle:
        handle.write(
            "\n    def drop_fast(self, lease_id):\n"
            "        self._leases.pop(lease_id, None)\n"
        )
    report = run([tmp_path / "src"], project=True, select=["REPRO411"])
    assert [f.rule for f in report.findings] == ["REPRO411"]
    assert "_leases" in report.findings[0].message


# ---------------------------------------------------------------------------
# Baseline: stale-entry detail + --prune-baseline


def _clock_tree(tmp_path: Path) -> Path:
    src = tmp_path / "src" / "repro" / "sim" / "clocky.py"
    src.parent.mkdir(parents=True)
    src.write_text("import time\n\n\ndef stamp():\n    return time.time()\n")
    return tmp_path / "src"


def _baseline_file(tmp_path: Path) -> Path:
    baseline = tmp_path / "baseline.txt"
    baseline.write_text(
        "REPRO101\tsrc/repro/sim/clocky.py\treturn time.time()\t"
        "# boundary timestamp, never enters simulation\n"
        "REPRO101\tsrc/repro/sim/gone.py\treturn time.monotonic()\t"
        "# this module was deleted long ago\n"
    )
    return baseline


def test_prune_baseline_drops_stale_keeps_justifications(tmp_path):
    src = _clock_tree(tmp_path)
    baseline_path = _baseline_file(tmp_path)
    baseline = Baseline.load(baseline_path)
    report = run([src], baseline=baseline, select=["REPRO101"])
    assert report.findings == [] and len(report.suppressed) == 1
    assert [e.path for e in report.stale_entries] == ["src/repro/sim/gone.py"]
    removed = prune_baseline(baseline_path, report.stale_entries)
    assert removed == 1
    survivor = Baseline.load(baseline_path)
    assert len(survivor.entries) == 1
    assert survivor.entries[0].justification == (
        "# boundary timestamp, never enters simulation"
    )


def test_cli_stale_warning_names_rule_and_justification(tmp_path, capsys):
    src = _clock_tree(tmp_path)
    baseline_path = _baseline_file(tmp_path)
    exit_code = lint_main(
        [str(src), "--baseline", str(baseline_path), "--select", "REPRO101"]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "[REPRO101]" in captured.err
    assert "this module was deleted long ago" in captured.err
    assert "--prune-baseline" in captured.err


def test_cli_prune_baseline_rewrites_file(tmp_path, capsys):
    src = _clock_tree(tmp_path)
    baseline_path = _baseline_file(tmp_path)
    exit_code = lint_main(
        [
            str(src),
            "--baseline",
            str(baseline_path),
            "--select",
            "REPRO101",
            "--prune-baseline",
        ]
    )
    captured = capsys.readouterr()
    assert exit_code == 0
    assert "pruned 1 stale entry" in captured.out
    assert "gone.py" not in baseline_path.read_text()


# ---------------------------------------------------------------------------
# CLI --project + meta-tests over the shipped tree


def test_cli_project_mode_reports_flow_findings(capsys):
    exit_code = lint_main(
        [
            str(FIXTURES / "keyflow_missing" / "src"),
            "--no-baseline",
            "--project",
            "--select",
            "REPRO601",
        ]
    )
    captured = capsys.readouterr()
    assert exit_code == 1
    assert "translator" in captured.out


def test_cli_without_project_flag_skips_flow_rules():
    exit_code = lint_main(
        [
            str(FIXTURES / "keyflow_missing" / "src"),
            "--no-baseline",
            "--select",
            "REPRO601",
        ]
    )
    assert exit_code == 0


def test_src_tree_is_project_lint_clean():
    baseline = Baseline.load(REPO_ROOT / "lint-baseline.txt")
    report = run([REPO_ROOT / "src"], baseline=baseline, project=True)
    assert report.findings == [], "\n".join(f.render() for f in report.findings)
    assert report.stale_entries == [], "stale baseline entries: " + "; ".join(
        entry.render() for entry in report.stale_entries
    )


def test_project_pass_stays_inside_time_budget():
    import repro.lintkit.flow as flow

    flow._CACHE.clear()  # force a cold parse + summary build
    started = time.monotonic()
    run([REPO_ROOT / "src"], project=True)
    elapsed = time.monotonic() - started
    assert elapsed < 30.0, f"project analysis took {elapsed:.1f}s (budget 30s)"

"""Cross-cutting coverage: rectangular textures, error hierarchy,
trace fuzzing, and result-object behaviours."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.stats import CacheRunResult
from repro.core import MachineConfig, simulate_machine
from repro.core.results import MachineResult, NodeTimings
from repro.distribution import BlockInterleaved
from repro.errors import (
    ConfigurationError,
    DeadlockError,
    ReproError,
    SimulationError,
    TraceFormatError,
)
from repro.geometry import Scene, Triangle, Vertex, load_trace
from repro.texture import MipmappedTexture, TextureMemoryLayout, TrilinearFilter


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for error in (ConfigurationError, SimulationError, TraceFormatError):
            assert issubclass(error, ReproError)
        assert issubclass(DeadlockError, SimulationError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            MipmappedTexture(3, 3)


class TestRectangularTextures:
    def test_layout_handles_wide_texture(self):
        layout = TextureMemoryLayout([MipmappedTexture(64, 16)])
        filt = TrilinearFilter(layout)
        lines = filt.line_addresses(
            np.array([32.0, 63.9]),
            np.array([8.0, 15.9]),
            np.array([0, 2]),
            np.array([0, 0]),
        )
        assert (lines >= 0).all()
        assert (lines < layout.total_lines).all()

    def test_wide_texture_pyramid_collapses_correctly(self):
        texture = MipmappedTexture(32, 4)
        dims = [(lvl.width, lvl.height) for lvl in texture.levels]
        assert dims[-1] == (1, 1)
        assert (16, 2) in dims
        assert (8, 1) in dims

    def test_rect_scene_simulates(self):
        scene = Scene("rect", 48, 48, [MipmappedTexture(64, 8)])
        scene.add(
            Triangle(
                Vertex(2, 2, 0, 0), Vertex(40, 2, 60, 0), Vertex(2, 40, 0, 7)
            )
        )
        config = MachineConfig(distribution=BlockInterleaved(4, 8))
        result = simulate_machine(scene, config)
        assert result.cycles > 0


class TestTraceFuzzing:
    @settings(max_examples=60, deadline=None)
    @given(junk=st.text(max_size=300))
    def test_arbitrary_text_never_crashes_loader(self, tmp_path_factory, junk):
        """The loader either parses or raises TraceFormatError — no
        IndexError/ValueError escapes."""
        path = tmp_path_factory.mktemp("fuzz") / "fuzz.trace"
        path.write_text(junk)
        try:
            load_trace(path)
        except (TraceFormatError, ConfigurationError, ValueError):
            # ValueError is acceptable only for numeric-field garbage in
            # otherwise well-formed records; the magic check rejects
            # everything that is not a trace file.
            pass

    @settings(max_examples=30, deadline=None)
    @given(
        extra=st.text(
            alphabet="0123456789. -", min_size=0, max_size=40
        )
    )
    def test_header_with_garbage_body(self, tmp_path_factory, extra):
        path = tmp_path_factory.mktemp("fuzz2") / "fuzz.trace"
        path.write_text(
            "REPRO-TRACE 2\nscene f\nscreen 8 8\ntextures 1\n"
            f"texture 8 8\ntriangles 1\ntri {extra}\n"
        )
        with pytest.raises((TraceFormatError, ValueError)):
            load_trace(path)


class TestResultObjects:
    def make_result(self, **overrides):
        base = dict(
            scene_name="s",
            distribution="block16x4",
            cache_name="lru16k",
            bus_ratio=1.0,
            fifo_capacity=10000,
            num_processors=4,
            cycles=100.0,
            timings=NodeTimings(
                finish=np.array([100.0, 80.0, 90.0, 60.0]),
                busy=np.zeros(4),
                stall=np.zeros(4),
            ),
            node_pixels=np.array([10, 10, 10, 10]),
            node_work=np.array([100, 80, 90, 60]),
            cache=CacheRunResult(),
        )
        base.update(overrides)
        return MachineResult(**base)

    def test_speedup_none_without_baseline(self):
        result = self.make_result()
        assert result.speedup is None
        assert result.efficiency is None

    def test_imbalance_formula(self):
        result = self.make_result()
        expected = (100 / np.mean([100, 80, 90, 60]) - 1) * 100
        assert result.work_imbalance_percent() == pytest.approx(expected)

    def test_zero_work_imbalance(self):
        result = self.make_result(node_work=np.zeros(4))
        assert result.work_imbalance_percent() == 0.0

    def test_summary_without_baseline_omits_speedup(self):
        text = self.make_result().summary()
        assert "speedup" not in text
        assert "block16x4" in text

    def test_extras_dict_defaults_empty(self):
        assert self.make_result().extras == {}

    def test_critical_node(self):
        assert self.make_result().timings.critical_node == 0


class TestCacheRunResultEdges:
    def test_merge_with_empty_attribution(self):
        a = CacheRunResult(fragments=5)
        b = CacheRunResult(fragments=3, texels_by_triangle=np.array([4, 0]))
        merged = a.merged_with(b)
        assert merged.fragments == 8
        assert merged.texels_by_triangle.tolist() == [4, 0]
        reversed_merge = b.merged_with(a)
        assert reversed_merge.texels_by_triangle.tolist() == [4, 0]


class TestDocScripts:
    def test_api_doc_generator_runs(self, tmp_path, monkeypatch, capsys):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "gen_api_docs", Path("scripts/gen_api_docs.py")
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        monkeypatch.setattr(module, "OUT", tmp_path / "API.md")
        module.main()
        text = (tmp_path / "API.md").read_text()
        assert "repro.core.machine" in text
        assert "simulate_machine" in text

    def test_report_generator_runs(self, tmp_path, monkeypatch):
        import importlib.util
        from pathlib import Path

        spec = importlib.util.spec_from_file_location(
            "gen_report", Path("scripts/gen_report.py")
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        results = tmp_path / "results"
        results.mkdir()
        (results / "table1.txt").write_text("Table 1 demo\ncontents\n")
        (results / "custom_extra.txt").write_text("extra\n")
        monkeypatch.setattr(module, "RESULTS", results)
        monkeypatch.setattr(module, "OUT", tmp_path / "REPORT.md")
        module.main()
        report = (tmp_path / "REPORT.md").read_text()
        assert "Table 1 demo" in report
        assert "custom_extra" in report

"""Tests for the observability layer: registry, spans, event recorder.

Covers the tentpole guarantees: the disabled recorder is a true no-op,
span nesting and histogram bucket edges behave exactly as documented,
Chrome trace exports follow the trace-event schema, and — most
importantly — simulation results are bit-identical with tracing on or
off on BOTH timing paths, with the disabled path paying no measurable
wall-time for the instrumentation.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.core.distributor import run_event_machine
from repro.core.machine import MachineConfig, simulate_machine
from repro.core.routing import build_routed_work
from repro.distribution import BlockInterleaved
from repro.errors import ConfigurationError
from repro.obs.recorder import NULL_RECORDER, EventRecorder
from repro.pipeline.stages import stage_timer


# -- registry ---------------------------------------------------------


class TestRegistry:
    def test_counter_accumulates_and_rejects_decrease(self):
        registry = obs.MetricsRegistry()
        counter = registry.counter("jobs.done")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ConfigurationError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = obs.MetricsRegistry()
        gauge = registry.gauge("queue.depth")
        gauge.set(7)
        gauge.inc(3)
        gauge.dec(9)
        assert gauge.value == 1

    def test_same_name_returns_same_instrument(self):
        registry = obs.MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_conflict_is_an_error(self):
        registry = obs.MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ConfigurationError):
            registry.gauge("x")

    def test_labels_create_independent_children(self):
        registry = obs.MetricsRegistry()
        counter = registry.counter("cache.misses")
        counter.labels(node=0).inc(2)
        counter.labels(node=1).inc(5)
        # Label order must not matter for child identity.
        child = registry.counter("tx").labels(a="1", b="2")
        assert registry.counter("tx").labels(b="2", a="1") is child
        snapshot = registry.snapshot()["counters"]
        assert snapshot["cache.misses{node=0}"] == 2
        assert snapshot["cache.misses{node=1}"] == 5
        # The unlabeled parent was never touched, so it is omitted.
        assert "cache.misses" not in snapshot

    def test_snapshot_only_contains_touched_instruments(self):
        registry = obs.MetricsRegistry()
        registry.counter("never.updated")
        registry.counter("updated").inc()
        snapshot = registry.snapshot()
        assert "never.updated" not in snapshot["counters"]
        assert snapshot["counters"]["updated"] == 1

    def test_reset_drops_everything(self):
        registry = obs.MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot()["counters"] == {}
        assert registry.get("c") is None


class TestHistogramBuckets:
    def test_edges_are_le_inclusive(self):
        """A value exactly at an edge lands in that edge's bucket."""
        registry = obs.MetricsRegistry()
        histogram = registry.histogram("h", edges=(1.0, 2.0, 5.0))
        for value in (1.0, 2.0, 5.0):
            histogram.observe(value)
        buckets = histogram.bucket_counts()
        assert buckets == {"1": 1, "2": 2, "5": 3, "+Inf": 3}

    def test_values_between_edges_round_up(self):
        registry = obs.MetricsRegistry()
        histogram = registry.histogram("h", edges=(1.0, 2.0, 5.0))
        histogram.observe(1.5)
        assert histogram.bucket_counts() == {"1": 0, "2": 1, "5": 1, "+Inf": 1}

    def test_overflow_bucket_catches_the_rest(self):
        registry = obs.MetricsRegistry()
        histogram = registry.histogram("h", edges=(1.0,))
        histogram.observe(100.0)
        assert histogram.bucket_counts() == {"1": 0, "+Inf": 1}

    def test_stats_track_count_sum_min_max(self):
        registry = obs.MetricsRegistry()
        histogram = registry.histogram("h", edges=(10.0,))
        for value in (3.0, 7.0, 1.0):
            histogram.observe(value)
        snapshot = registry.snapshot()["histograms"]["h"]
        assert snapshot["count"] == 3
        assert snapshot["sum"] == 11.0
        assert snapshot["min"] == 1.0
        assert snapshot["max"] == 7.0

    def test_unsorted_edges_rejected(self):
        registry = obs.MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("bad", edges=(5.0, 1.0))


# -- spans ------------------------------------------------------------


class TestSpans:
    def test_nesting_tracks_depth_and_path(self):
        with obs.span("outer") as outer:
            assert outer.depth == 0
            assert obs.current_span() is outer
            with obs.span("inner") as inner:
                assert inner.depth == 1
                assert inner.parent is outer
                assert inner.path == "outer/inner"
            assert obs.current_span() is outer
        assert obs.current_span() is None
        assert outer.seconds is not None and outer.seconds >= 0.0

    def test_span_restores_stack_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.span("doomed"):
                raise RuntimeError("boom")
        assert obs.current_span() is None

    def test_span_observes_into_registry_histogram(self):
        with obs.span("unit-test-span"):
            pass
        histogram = obs.registry().get("span.unit-test-span")
        assert histogram is not None
        assert histogram.count == 1

    def test_spans_are_thread_local(self):
        seen = {}

        def worker():
            seen["worker_top"] = obs.current_span()

        with obs.span("main-only"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["worker_top"] is None

    def test_stage_timer_feeds_both_sinks(self):
        from repro.pipeline.store import store

        before = store().stats().get("obs-probe", {}).get("calls", 0)
        with stage_timer("obs-probe"):
            pass
        histogram = obs.registry().get("span.stage.obs-probe")
        assert histogram is not None and histogram.count >= 1
        assert store().stats()["obs-probe"]["calls"] == before + 1


# -- recorder state machine ------------------------------------------


class TestRecorderToggle:
    def test_disabled_by_default_and_null_is_noop(self):
        assert not obs.tracing_enabled()
        active = obs.recorder()
        assert active is NULL_RECORDER
        assert not active
        # All record calls are silent no-ops returning None.
        assert active.span(("sim", "node-0"), "busy", 0, 5) is None
        assert active.instant(("sim", "node-0"), "tick", 1) is None
        assert active.value(("sim", "fifo"), "occupancy", 1, 3) is None

    def test_enable_disable_cycle(self):
        recorder = obs.enable_tracing()
        assert obs.tracing_enabled()
        assert obs.recorder() is recorder
        obs.disable_tracing()
        assert not obs.tracing_enabled()
        assert obs.recorder() is NULL_RECORDER

    def test_set_recorder_returns_previous(self):
        fresh = EventRecorder()
        previous = obs.set_recorder(fresh)
        try:
            assert previous is NULL_RECORDER
            assert obs.recorder() is fresh
        finally:
            obs.set_recorder(previous)


# -- chrome trace schema ---------------------------------------------


def tiny_stream(num_processors=4, triangles=40):
    """A synthetic distributor stream: round-robin, modest texel loads."""
    return [
        (tri, tri % num_processors, 8 + (tri % 5), 4 * (tri % 7))
        for tri in range(triangles)
    ]


class TestChromeTrace:
    def run_traced(self, fifo_capacity=4):
        recorder = EventRecorder()
        stream = tiny_stream()
        cycles, finish = run_event_machine(stream, 4, fifo_capacity, 25, 1.0,
                                           recorder=recorder)
        return recorder, cycles, finish

    def test_every_event_has_required_fields(self):
        recorder, _, _ = self.run_traced()
        trace = recorder.chrome_trace()
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        events = trace["traceEvents"]
        assert events, "a traced run must produce events"
        for event in events:
            assert {"ph", "ts", "pid", "tid", "name"} <= set(event)
            assert event["ph"] in ("X", "i", "C", "M")
            if event["ph"] == "X":
                assert event["dur"] >= 0
            if event["ph"] == "M":
                assert event["name"] in ("process_name", "thread_name")

    def test_tracks_get_metadata_names(self):
        recorder, _, _ = self.run_traced()
        meta = [e for e in recorder.chrome_trace()["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
        assert "distributor" in names
        assert {"node-0", "node-1", "node-2", "node-3"} <= names
        # pid/tid pairs must be unique per track.
        pairs = [(e["pid"], e["tid"]) for e in meta if e["name"] == "thread_name"]
        assert len(pairs) == len(set(pairs))

    def test_span_timestamps_are_sim_cycles(self):
        recorder, cycles, _ = self.run_traced()
        xs = [e for e in recorder.events if e["ph"] == "X"]
        assert xs
        assert all(0 <= e["ts"] <= cycles for e in xs)
        assert all(e["ts"] + e["dur"] <= cycles + 1e-9 for e in xs)

    def test_write_chrome_trace_round_trips(self, tmp_path):
        recorder, _, _ = self.run_traced()
        out = tmp_path / "trace.json"
        recorder.write_chrome_trace(out)
        loaded = json.loads(out.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert len(loaded["traceEvents"]) == len(
            recorder.chrome_trace()["traceEvents"]
        )

    def test_fifo_occupancy_summary(self):
        recorder, _, _ = self.run_traced(fifo_capacity=4)
        values = recorder.value_summary()
        occupancy_keys = [k for k in values if k.endswith("/occupancy")]
        assert occupancy_keys, "bounded FIFOs must sample occupancy"
        for key in occupancy_keys:
            series = values[key]
            assert series["count"] > 0
            assert 0 <= series["min"] <= series["max"] <= 4
            assert sum(series["histogram"].values()) == series["count"]

    def test_node_summary_utilization_bounded(self):
        recorder, _, _ = self.run_traced()
        nodes = recorder.node_summary()
        assert set(nodes) == {"node-0", "node-1", "node-2", "node-3"}
        for node in nodes.values():
            assert node["busy_cycles"] > 0
            assert 0.0 <= node["utilization"] <= 1.0


# -- determinism and overhead ----------------------------------------


class TestTracingIsFree:
    @pytest.mark.parametrize("timing_mode,fifo", [("fast", 10000), ("event", 8)])
    def test_results_bit_identical_with_tracing_on(
        self, tiny_bench_scene, timing_mode, fifo
    ):
        """The tentpole acceptance check: tracing never perturbs results."""
        distribution = BlockInterleaved(4, 16)
        work = build_routed_work(tiny_bench_scene, distribution, cache_spec="lru")
        config = MachineConfig(distribution=distribution, fifo_capacity=fifo)

        obs.disable_tracing()
        plain = simulate_machine(
            tiny_bench_scene, config, routed=work, timing_mode=timing_mode
        )
        recorder = obs.enable_tracing()
        try:
            traced = simulate_machine(
                tiny_bench_scene, config, routed=work, timing_mode=timing_mode
            )
        finally:
            obs.disable_tracing()

        assert recorder.events, "tracing on must actually record events"
        assert traced.cycles == plain.cycles
        assert np.array_equal(traced.timings.finish, plain.timings.finish)
        assert np.array_equal(traced.timings.busy, plain.timings.busy)
        assert np.array_equal(traced.node_pixels, plain.node_pixels)
        assert traced.cache.misses == plain.cache.misses
        assert traced.cache.texels_fetched == plain.cache.texels_fetched

    def test_event_machine_identical_under_recorder(self):
        stream = tiny_stream(triangles=120)
        plain = run_event_machine(stream, 4, 6, 25, 1.0)
        traced = run_event_machine(stream, 4, 6, 25, 1.0, recorder=EventRecorder())
        assert plain == traced

    def test_disabled_overhead_within_five_percent(self):
        """Disabled instrumentation must cost ≤5% of a traced run.

        The recorder strictly adds work, so the disabled path being no
        slower than 1.05x the *enabled* path bounds the instrumentation
        overhead without needing a pre-instrumentation binary to
        compare against.  Medians over several repeats keep scheduler
        noise out.
        """
        stream = tiny_stream(triangles=400)

        def run(recorder):
            return run_event_machine(stream, 4, 8, 25, 1.0, recorder=recorder)

        def median_time(recorder_factory, repeats=7):
            samples = []
            for _ in range(repeats):
                started = time.perf_counter()
                run(recorder_factory())
                samples.append(time.perf_counter() - started)
            samples.sort()
            return samples[len(samples) // 2]

        run(None)  # warm caches/JIT-free but warms allocators
        disabled = median_time(lambda: None)
        enabled = median_time(EventRecorder)
        # 1 ms of absolute slack keeps tiny timings from flaking.
        assert disabled <= enabled * 1.05 + 1e-3

    def test_null_recorder_calls_are_cheap(self):
        """Direct no-op calls stay in the tens-of-nanoseconds range."""
        null = NULL_RECORDER
        count = 100_000
        started = time.perf_counter()
        for i in range(count):
            null.span(("sim", "node-0"), "busy", i, i + 1)
        elapsed = time.perf_counter() - started
        # Generous bound: even slow CI should do 100k no-ops in < 0.5 s.
        assert elapsed < 0.5

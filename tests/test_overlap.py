"""Tests for the analytical overlap model and its validation."""

import pytest

from repro.analysis.overlap import (
    overlap_validation,
    predicted_overlap,
    scene_measured_overlap,
    scene_predicted_overlap,
)
from repro.errors import ConfigurationError
from repro.geometry import Scene, Triangle, Vertex
from repro.texture.texture import MipmappedTexture


class TestClosedForm:
    def test_point_triangle_overlaps_one_tile(self):
        assert predicted_overlap(0, 0, 16) == pytest.approx(1.0)

    def test_tile_sized_box_overlaps_four(self):
        assert predicted_overlap(16, 16, 16) == pytest.approx(4.0)

    def test_monotone_in_box_size(self):
        values = [predicted_overlap(w, w, 8) for w in (1, 4, 16, 64)]
        assert values == sorted(values)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            predicted_overlap(4, 4, 0)


class TestSceneOverlap:
    def make_scene(self):
        scene = Scene("one", 64, 64, [MipmappedTexture(8, 8)])
        scene.add(Triangle(Vertex(10, 10), Vertex(26, 10), Vertex(10, 26)))
        return scene

    def test_measured_matches_hand_count(self):
        scene = self.make_scene()
        # Bounding box [10, 26) x [10, 26) on 16-pixel tiles touches a
        # 2x2 tile window.
        assert scene_measured_overlap(scene, 16) == pytest.approx(4.0)

    def test_predicted_in_same_ballpark(self, tiny_bench_scene):
        for tile in (8, 16, 32):
            predicted = scene_predicted_overlap(tiny_bench_scene, tile)
            measured = scene_measured_overlap(tiny_bench_scene, tile)
            assert measured == pytest.approx(predicted, rel=0.25)

    def test_empty_scene(self):
        scene = Scene("empty", 32, 32, [MipmappedTexture(8, 8)])
        assert scene_predicted_overlap(scene, 8) == 0.0
        assert scene_measured_overlap(scene, 8) == 0.0

    def test_validation_table(self, tiny_bench_scene):
        text = overlap_validation(tiny_bench_scene, [8, 16])
        assert "predicted overlap" in text
        assert "16" in text

"""Tests for the staged pipeline and its memoized artifact store."""

from __future__ import annotations

import os
import pickle
import time

import pytest

from repro import pipeline
from repro.core.config import MachineConfig
from repro.core.machine import simulate_machine
from repro.core.routing import build_routed_work
from repro.distribution import BlockInterleaved, ScanLineInterleaved
from repro.errors import ConfigurationError
from repro.pipeline.store import ArtifactStore
from repro.workloads.scenes import SCENE_NAMES, build_scene


@pytest.fixture(autouse=True)
def fresh_store(monkeypatch, tmp_path):
    """Isolate every test behind its own process-wide store."""
    monkeypatch.delenv(pipeline.ARTIFACT_DIR_ENV_VAR, raising=False)
    monkeypatch.delenv(pipeline.ARTIFACT_ENTRIES_ENV_VAR, raising=False)
    pipeline.configure()
    yield
    pipeline.configure()


class TestArtifactStore:
    def test_computes_once_then_memory_hits(self):
        store = ArtifactStore(max_entries=8)
        calls = []
        compute = lambda: calls.append(1) or {"value": 42}
        first = store.get_or_compute("stage", "k", compute)
        second = store.get_or_compute("stage", "k", compute)
        assert first is second  # identity — required by scene memoisation
        assert len(calls) == 1
        stats = store.stats()["stage"]
        assert stats["calls"] == 2
        assert stats["memory_hits"] == 1
        assert stats["misses"] == 1

    def test_lru_evicts_oldest(self):
        store = ArtifactStore(max_entries=2)
        for name in ("a", "b", "c"):
            store.get_or_compute("s", name, lambda name=name: name.upper())
        assert len(store) == 2
        assert not store.contains("s", "a")
        assert store.contains("s", "b") and store.contains("s", "c")

    def test_lru_touch_on_hit(self):
        store = ArtifactStore(max_entries=2)
        store.get_or_compute("s", "a", lambda: 1)
        store.get_or_compute("s", "b", lambda: 2)
        store.get_or_compute("s", "a", lambda: 1)  # refresh "a"
        store.get_or_compute("s", "c", lambda: 3)  # should evict "b"
        assert store.contains("s", "a")
        assert not store.contains("s", "b")

    def test_rejects_empty_store(self):
        with pytest.raises(ConfigurationError):
            ArtifactStore(max_entries=0)

    def test_disk_tier_round_trip(self, tmp_path):
        writer = ArtifactStore(max_entries=8, disk_dir=tmp_path)
        writer.get_or_compute("scene", "key", lambda: [1, 2, 3])
        files = list(tmp_path.rglob("*.pkl"))
        assert len(files) == 1 and files[0].parent.name == "scene"

        reader = ArtifactStore(max_entries=8, disk_dir=tmp_path)
        value = reader.get_or_compute(
            "scene", "key", lambda: pytest.fail("should hydrate from disk")
        )
        assert value == [1, 2, 3]
        assert reader.stats()["scene"]["disk_hits"] == 1

    def test_corrupt_pickle_recomputes(self, tmp_path):
        writer = ArtifactStore(max_entries=8, disk_dir=tmp_path)
        writer.get_or_compute("s", "key", lambda: "good")
        (pkl,) = tmp_path.rglob("*.pkl")
        pkl.write_bytes(b"not a pickle")

        reader = ArtifactStore(max_entries=8, disk_dir=tmp_path)
        assert reader.get_or_compute("s", "key", lambda: "recomputed") == "recomputed"
        assert reader.stats()["s"]["misses"] == 1
        # The recompute rewrote a readable artifact.
        assert pickle.loads(pkl.read_bytes()) == "recomputed"

    def test_memory_only_entries_stay_off_disk(self, tmp_path):
        store = ArtifactStore(max_entries=8, disk_dir=tmp_path)
        store.get_or_compute("routed", "key", lambda: object(), disk=False)
        assert list(tmp_path.rglob("*.pkl")) == []
        assert store.flush_to_disk() == 0

    def test_flush_to_disk_spills_memory_entries(self, tmp_path):
        store = ArtifactStore(max_entries=8)
        store.get_or_compute("s", "a", lambda: 1)
        store.get_or_compute("s", "b", lambda: 2)
        store.attach_disk(tmp_path)
        assert store.flush_to_disk() == 2
        assert len(list(tmp_path.rglob("*.pkl"))) == 2
        assert store.flush_to_disk() == 0  # already on disk

    def test_record_compute_counts_uncached_work(self):
        store = ArtifactStore(max_entries=2)
        store.record_compute("timing", 0.5)
        stats = store.stats()["timing"]
        assert stats["calls"] == 1 and stats["misses"] == 1
        assert stats["compute_seconds"] == pytest.approx(0.5)

    def test_env_entries_validation(self, monkeypatch):
        monkeypatch.setenv(pipeline.ARTIFACT_ENTRIES_ENV_VAR, "nope")
        with pytest.raises(ConfigurationError):
            pipeline.configure()
        monkeypatch.setenv(pipeline.ARTIFACT_ENTRIES_ENV_VAR, "0")
        with pytest.raises(ConfigurationError):
            pipeline.configure()
        monkeypatch.delenv(pipeline.ARTIFACT_ENTRIES_ENV_VAR)
        pipeline.configure()


class TestStageArtifacts:
    def test_scene_stage_memoises(self):
        a = build_scene("blowout775", 0.0625)
        b = build_scene("blowout775", 0.0625)
        assert a is b
        assert pipeline.stats()["scene"]["memory_hits"] == 1

    def test_routed_work_is_shared_across_repeats(self):
        scene = build_scene("blowout775", 0.0625)
        dist = BlockInterleaved(4, 16)
        w1 = build_routed_work(scene, dist)
        w2 = build_routed_work(scene, dist)
        assert w1 is w2
        assert pipeline.stats()["routed"]["memory_hits"] == 1

    def test_routing_ablation_shares_replay(self):
        scene = build_scene("blowout775", 0.0625)
        dist = BlockInterleaved(4, 16)
        build_routed_work(scene, dist, cache_spec="perfect", route_by="bbox")
        build_routed_work(scene, dist, cache_spec="perfect", route_by="coverage")
        stats = pipeline.stats()
        # Same replay key: the oracle-routing contrast replays once.
        assert stats["replay"]["misses"] == 1
        assert stats["replay"]["memory_hits"] == 1
        assert stats["routing"]["misses"] == 2

    def test_hand_built_scene_falls_back_uncached(self, flat_scene):
        work = build_routed_work(flat_scene, BlockInterleaved(4, 8))
        assert work.num_processors == 4
        stats = pipeline.stats()
        # No content identity: nothing lands in the keyed stages.
        assert "routed" not in stats
        assert stats["routing"]["misses"] == 1

    def test_mutating_a_scene_invalidates_its_identity(self):
        scene = build_scene("blowout775", 0.0625)
        assert scene.artifact_key is not None
        from tests.conftest import quad

        for tri in quad(0, 0, 8):
            scene.add(tri)
        assert scene.artifact_key is None

    def test_fragment_override_bypasses_cache(self):
        scene = build_scene("blowout775", 0.0625)
        fragments = scene.fragments()
        build_routed_work(scene, BlockInterleaved(4, 16), fragments=fragments)
        assert "routed" not in pipeline.stats()

    def test_simulation_equals_uncached_path(self):
        scene = build_scene("blowout775", 0.0625)
        config = MachineConfig(distribution=ScanLineInterleaved(4, 2))
        through_pipeline = simulate_machine(scene, config)
        fresh = build_scene("blowout775", 0.0625, cache=False)
        uncached = simulate_machine(fresh, config)
        assert through_pipeline.cycles == uncached.cycles
        assert through_pipeline.cache.misses == uncached.cache.misses

    def test_render_stats_lists_stages(self):
        build_scene("blowout775", 0.0625)
        text = pipeline.render_stats(pipeline.stats())
        assert "scene" in text and "mem hits" in text
        pipeline.reset()
        assert "no stages" in pipeline.render_stats(pipeline.stats())


class TestCrossProcessHydration:
    def test_pool_workers_reuse_parent_prefixes(self, tmp_path, monkeypatch):
        monkeypatch.setenv(pipeline.ARTIFACT_DIR_ENV_VAR, str(tmp_path))
        pipeline.configure(disk_dir=tmp_path)
        build_routed_work(build_scene("blowout775", 0.0625), BlockInterleaved(4, 16))
        from repro.analysis.parallel import run_tasks

        results = run_tasks(_stage_hit_probe, [(0.0625,)], workers=2)
        stats = results[0]
        # Forked workers inherit the memory tier (and may hit the
        # assembled work directly); spawned ones read the disk tier.
        # Either way no expensive upstream stage is recomputed.
        for stage in ("scene", "fragments", "routing", "replay"):
            assert stats.get(stage, {}).get("misses", 0) == 0
        hits = sum(
            counters["memory_hits"] + counters["disk_hits"]
            for counters in stats.values()
        )
        assert hits >= 1

    def test_cold_process_hydrates_from_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv(pipeline.ARTIFACT_DIR_ENV_VAR, str(tmp_path))
        pipeline.configure(disk_dir=tmp_path)
        build_routed_work(build_scene("blowout775", 0.0625), BlockInterleaved(4, 16))

        import json
        import subprocess
        import sys

        probe = (
            "import json, sys\n"
            "from repro.core.routing import build_routed_work\n"
            "from repro.distribution import BlockInterleaved\n"
            "from repro.workloads.scenes import build_scene\n"
            "from repro import pipeline\n"
            "build_routed_work(build_scene('blowout775', 0.0625), BlockInterleaved(4, 16))\n"
            "print(json.dumps(pipeline.stats()))\n"
        )
        completed = subprocess.run(
            [sys.executable, "-c", probe],
            capture_output=True,
            text=True,
            check=True,
            env={**os.environ, pipeline.ARTIFACT_DIR_ENV_VAR: str(tmp_path)},
        )
        stats = json.loads(completed.stdout)
        assert stats["scene"]["disk_hits"] == 1
        assert stats["routing"]["disk_hits"] == 1
        assert stats["replay"]["disk_hits"] == 1
        assert stats["scene"]["misses"] == 0

    def test_ensure_shared_store_creates_and_exports_dir(self, monkeypatch):
        monkeypatch.delenv(pipeline.ARTIFACT_DIR_ENV_VAR, raising=False)
        pipeline.configure()
        path = pipeline.ensure_shared_store()
        assert path.is_dir()
        assert os.environ[pipeline.ARTIFACT_DIR_ENV_VAR] == str(path)
        # Idempotent: a second call returns the same directory.
        assert pipeline.ensure_shared_store() == path


def _stage_hit_probe(scale):
    """Worker body: rebuild one sweep point, report this worker's stats."""
    from repro import pipeline as worker_pipeline
    from repro.core.routing import build_routed_work as build
    from repro.distribution import BlockInterleaved
    from repro.pipeline.store import store
    from repro.workloads.scenes import build_scene as scenes_build

    # Forked workers inherit the parent's counters; measure only us.
    store().reset_stats()
    build(scenes_build("blowout775", scale), BlockInterleaved(4, 16))
    return worker_pipeline.stats()


def _sweep_fig7_style(scale):
    """All scenes x both distribution families x {4, 16, 64} processors."""
    for name in SCENE_NAMES:
        scene = build_scene(name, scale)
        for processors in (4, 16, 64):
            for dist in (
                BlockInterleaved(processors, 16),
                ScanLineInterleaved(processors, 2),
            ):
                build_routed_work(scene, dist)


class TestSweepReuse:
    def test_second_sweep_is_at_least_twice_as_fast(self):
        """The acceptance sweep: run twice, the rerun rides the store."""
        scale = 0.0625
        started = time.perf_counter()
        _sweep_fig7_style(scale)
        cold = time.perf_counter() - started

        points = len(SCENE_NAMES) * 3 * 2
        stats = pipeline.stats()
        assert stats["routed"]["misses"] == points

        started = time.perf_counter()
        _sweep_fig7_style(scale)
        warm = time.perf_counter() - started

        stats = pipeline.stats()
        assert stats["routed"]["memory_hits"] == points
        assert stats["routed"]["misses"] == points  # nothing recomputed
        assert stats["scene"]["memory_hits"] >= len(SCENE_NAMES)
        assert warm * 2 <= cold, f"warm={warm:.3f}s cold={cold:.3f}s"

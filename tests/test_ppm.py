"""Tests for PPM image export."""

import numpy as np
import pytest

from repro.analysis.ppm import (
    heat_colormap,
    overdraw_image,
    owner_map_image,
    read_ppm,
    save_overdraw,
    save_owner_map,
    write_ppm,
)
from repro.distribution import BlockInterleaved, ScanLineInterleaved
from repro.errors import ConfigurationError


class TestPpmIo:
    def test_round_trip(self, tmp_path):
        rgb = np.arange(2 * 3 * 3, dtype=np.uint8).reshape(2, 3, 3)
        path = tmp_path / "img.ppm"
        write_ppm(path, rgb)
        back = read_ppm(path)
        assert back.shape == (2, 3, 3)
        assert (back == rgb).all()

    def test_clips_non_uint8(self, tmp_path):
        rgb = np.array([[[300.0, -5.0, 127.5]]])
        path = tmp_path / "clip.ppm"
        write_ppm(path, rgb)
        pixel = read_ppm(path)[0, 0]
        assert pixel.tolist() == [255, 0, 127]

    def test_rejects_bad_shape(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_ppm(tmp_path / "x.ppm", np.zeros((4, 4)))

    def test_read_rejects_other_formats(self, tmp_path):
        path = tmp_path / "not.ppm"
        path.write_bytes(b"P3\n1 1\n255\n0 0 0\n")
        with pytest.raises(ConfigurationError):
            read_ppm(path)


class TestColormaps:
    def test_heat_ramp_endpoints(self):
        image = heat_colormap(np.array([[0.0, 1.0]]))
        assert image[0, 0].tolist() == [0, 0, 0]
        assert image[0, 1].tolist() == [255, 255, 255]

    def test_heat_ramp_monotone_brightness(self):
        image = heat_colormap(np.array([[0.0, 0.3, 0.6, 1.0]]))
        brightness = image[0].astype(int).sum(axis=1)
        assert (np.diff(brightness) > 0).all()

    def test_all_zero_field(self):
        image = heat_colormap(np.zeros((2, 2)))
        assert (image == 0).all()


class TestSpatialImages:
    def test_owner_map_distinct_colours(self):
        image = owner_map_image(ScanLineInterleaved(4, 2), 8, 16)
        rows = {tuple(image[row, 0]) for row in range(0, 16, 2)}
        assert len(rows) == 4

    def test_owner_map_matches_distribution(self):
        dist = BlockInterleaved(4, 4)
        image = owner_map_image(dist, 8, 8)
        assert (image[0, 0] == image[1, 1]).all()      # same tile
        assert not (image[0, 0] == image[0, 4]).all()  # adjacent tile

    def test_overdraw_image_shape_and_hotspot(self, overdraw_scene):
        image = overdraw_image(overdraw_scene)
        assert image.shape == (64, 64, 3)
        hot = image[4, 4].astype(int).sum()
        cold = image[60, 60].astype(int).sum()
        assert hot > cold

    def test_save_helpers(self, tmp_path, overdraw_scene):
        owner_path = tmp_path / "owners.ppm"
        heat_path = tmp_path / "heat.ppm"
        save_owner_map(BlockInterleaved(4, 8), 32, 32, owner_path)
        save_overdraw(overdraw_scene, heat_path)
        assert read_ppm(owner_path).shape == (32, 32, 3)
        assert read_ppm(heat_path).shape == (64, 64, 3)

"""Cross-module property tests: invariants of the whole pipeline.

These tie the substrates together on randomly generated miniature
scenes: conservation laws (pixels partition exactly), determinism, and
the agreement of independently implemented paths.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MachineConfig, simulate_machine
from repro.core.routing import build_routed_work
from repro.distribution import (
    BlockInterleaved,
    ScanLineInterleaved,
    SingleProcessor,
)
from repro.geometry import Scene, Triangle, Vertex
from repro.texture.texture import MipmappedTexture


@st.composite
def random_scenes(draw):
    """Small random scenes: a handful of arbitrary textured triangles."""
    num_textures = draw(st.integers(min_value=1, max_value=3))
    textures = [MipmappedTexture(16, 16) for _ in range(num_textures)]
    scene = Scene("fuzz", 48, 48, textures)
    count = draw(st.integers(min_value=1, max_value=10))
    coordinate = st.floats(min_value=-10, max_value=58, width=32)
    texcoord = st.floats(min_value=0, max_value=64, width=32)
    for _ in range(count):
        vertices = [
            Vertex(draw(coordinate), draw(coordinate), draw(texcoord), draw(texcoord))
            for _ in range(3)
        ]
        scene.add(
            Triangle(
                vertices[0],
                vertices[1],
                vertices[2],
                texture=draw(st.integers(min_value=0, max_value=num_textures - 1)),
            )
        )
    return scene


@st.composite
def random_distributions(draw):
    family = draw(st.sampled_from(["block", "sli"]))
    processors = draw(st.sampled_from([1, 2, 4, 8]))
    size = draw(st.sampled_from([1, 2, 4, 8, 16]))
    if family == "block":
        return BlockInterleaved(processors, size)
    return ScanLineInterleaved(processors, size)


class TestPipelineInvariants:
    @settings(max_examples=30, deadline=None)
    @given(scene=random_scenes(), dist=random_distributions())
    def test_pixels_partition_exactly(self, scene, dist):
        """Every fragment belongs to exactly one node; none is lost."""
        work = build_routed_work(scene, dist, cache_spec="perfect")
        assert work.node_pixels.sum() == len(scene.fragments())
        per_node = sum(int(work.pixels[n].sum()) for n in range(dist.num_processors))
        assert per_node == len(scene.fragments())

    @settings(max_examples=20, deadline=None)
    @given(scene=random_scenes(), dist=random_distributions())
    def test_parallel_misses_at_least_serial(self, scene, dist):
        """Splitting an image can only destroy reuse, never create it."""
        split = build_routed_work(scene, dist, cache_spec="lru")
        solo = build_routed_work(scene, SingleProcessor(), cache_spec="lru")
        assert split.cache.misses >= solo.cache.misses

    @settings(max_examples=20, deadline=None)
    @given(scene=random_scenes(), dist=random_distributions())
    def test_simulation_is_deterministic(self, scene, dist):
        config = MachineConfig(distribution=dist, cache="lru", bus_ratio=1.0)
        first = simulate_machine(scene, config)
        second = simulate_machine(scene, config)
        assert first.cycles == second.cycles
        assert (first.timings.finish == second.timings.finish).all()

    @settings(max_examples=20, deadline=None)
    @given(scene=random_scenes(), dist=random_distributions())
    def test_perfect_cache_never_slower_than_real(self, scene, dist):
        perfect = simulate_machine(
            scene, MachineConfig(distribution=dist, cache="perfect", bus_ratio=1.0)
        )
        real = simulate_machine(
            scene, MachineConfig(distribution=dist, cache="lru", bus_ratio=1.0)
        )
        assert perfect.cycles <= real.cycles + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(scene=random_scenes())
    def test_event_path_equals_fast_path_on_random_scenes(self, scene):
        """The two timing implementations agree on arbitrary content."""
        from repro.core.distributor import interleave_stream, run_event_machine

        dist = BlockInterleaved(4, 8)
        work = build_routed_work(scene, dist, cache_spec="lru")
        config = MachineConfig(distribution=dist, cache="lru", bus_ratio=1.0)
        fast = simulate_machine(scene, config, routed=work)
        stream = interleave_stream(work.triangles, work.pixels, work.texels)
        cycles, _finish = run_event_machine(stream, 4, 10**9, 25, 1.0)
        assert cycles == pytest.approx(fast.cycles)

    @settings(max_examples=20, deadline=None)
    @given(scene=random_scenes())
    def test_fragment_count_invariant_under_distribution(self, scene):
        """Rasterisation is distribution-independent (clip-on-draw)."""
        baseline = len(scene.fragments())
        for dist in (BlockInterleaved(4, 4), ScanLineInterleaved(8, 2)):
            work = build_routed_work(scene, dist, cache_spec="perfect")
            assert work.node_pixels.sum() == baseline


class TestUnitTextureInvariant:
    @settings(max_examples=25, deadline=None)
    @given(
        scale=st.floats(min_value=0.25, max_value=8.0),
        offset=st.floats(min_value=0, max_value=100),
    )
    def test_unique_texels_bounded_by_footprint(self, scale, offset):
        """Unique texels touched never exceed 8 per fragment."""
        from repro.analysis.characterize import unique_texels_touched

        scene = Scene("one", 32, 32, [MipmappedTexture(64, 64)])
        scene.add(
            Triangle(
                Vertex(0, 0, offset, offset),
                Vertex(30, 0, offset + 30 * scale, offset),
                Vertex(0, 30, offset, offset + 30 * scale),
            )
        )
        fragments = len(scene.fragments())
        unique = unique_texels_touched(scene)
        assert unique <= 8 * fragments

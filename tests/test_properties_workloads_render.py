"""Property tests over the workload generator and renderer."""

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.render import GradientTexture, render_scene
from repro.workloads import SCENE_SPECS
from repro.workloads.generator import SceneSpec, generate_scene
from repro.workloads.sequence import pan_sequence


@st.composite
def generator_specs(draw):
    """Small random-but-valid scene specs."""
    return SceneSpec(
        name="prop",
        screen_width=128,
        screen_height=96,
        depth_complexity=draw(st.floats(min_value=0.5, max_value=6.0)),
        pixels_per_triangle=draw(st.floats(min_value=30.0, max_value=400.0)),
        num_textures=draw(st.integers(min_value=1, max_value=6)),
        texture_edges=((draw(st.sampled_from([8, 16, 32, 64])), 1.0),),
        texel_scale=draw(st.floats(min_value=0.2, max_value=3.0)),
        object_grid=draw(st.integers(min_value=1, max_value=3)),
        emit_order=draw(st.sampled_from(["clustered", "raster", "random"])),
        seed=draw(st.integers(min_value=0, max_value=999)),
    )


class TestGeneratorProperties:
    @settings(max_examples=25, deadline=None)
    @given(spec=generator_specs())
    def test_generated_scenes_are_well_formed(self, spec):
        scene = generate_scene(spec)
        assert scene.num_triangles > 0
        for triangle in scene.triangles[:50]:
            assert 0 <= triangle.texture < len(scene.textures)
        fragments = scene.fragments()
        assert (fragments.x >= 0).all() and (fragments.x < scene.width).all()
        assert (fragments.y >= 0).all() and (fragments.y < scene.height).all()
        assert (fragments.level >= 0).all()

    @settings(max_examples=15, deadline=None, derandomize=True)
    @given(spec=generator_specs())
    def test_depth_complexity_tracks_target(self, spec):
        scene = generate_scene(spec)
        measured = len(scene.fragments()) / scene.screen_pixels
        # Area targeting overshoots by at most ~one object and clipping
        # sampling noise; generous bounds still catch regressions.  The
        # absolute slack covers low depth targets, where a single large
        # triangle is a big relative overshoot on a small frame.
        assert measured == pytest.approx(spec.depth_complexity, rel=0.5, abs=0.35)

    @settings(max_examples=10, deadline=None)
    @given(
        frames=st.integers(min_value=1, max_value=4),
        pan=st.integers(min_value=0, max_value=24),
    )
    def test_pan_sequence_invariants(self, frames, pan):
        sequence = pan_sequence(SCENE_SPECS["blowout775"], 0.0625, frames, pan)
        assert len(sequence) == frames
        sizes = {(frame.width, frame.height) for frame in sequence}
        assert len(sizes) == 1
        counts = {frame.num_triangles for frame in sequence}
        assert len(counts) == 1  # same world, translated


class TestRendererProperties:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100))
    def test_render_is_deterministic(self, seed):
        spec = replace(SCENE_SPECS["blowout775"], seed=seed)
        scene = generate_scene(spec, scale=0.0625)
        a = render_scene(scene)
        b = render_scene(scene)
        assert (a == b).all()

    @settings(max_examples=8, deadline=None)
    @given(offset=st.floats(min_value=0.0, max_value=32.0))
    def test_gradient_linearity_survives_texture_offset(self, offset):
        """Bilinear filtering of a linear pattern is exact for any
        phase of the sample grid relative to the texel grid."""
        from repro.geometry import Scene, Triangle, Vertex
        from repro.texture.texture import MipmappedTexture

        scene = Scene("grad", 32, 32, [MipmappedTexture(64, 64)])
        scene.add(
            Triangle(
                Vertex(0, 0, offset, 0),
                Vertex(32, 0, offset + 32, 0),
                Vertex(0, 32, offset, 32),
            )
        )
        scene.add(
            Triangle(
                Vertex(32, 0, offset + 32, 0),
                Vertex(32, 32, offset + 32, 32),
                Vertex(0, 32, offset, 32),
            )
        )
        image = render_scene(scene, [GradientTexture()]).astype(float) / 255.0
        row = image[16, :, 0]
        expected = ((np.arange(32) + 0.5 + offset) / 64) % 1.0
        # Away from the wrap discontinuity the ramp must be exact.
        safe = np.abs(expected - 0.999) > 0.05
        assert row[safe] == pytest.approx(expected[safe], abs=0.02)

"""Tests for triangle setup and scan conversion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Scene, Triangle, Vertex
from repro.raster import (
    FragmentBuffer,
    mip_level_for_scale,
    rasterize_scene,
    rasterize_triangle,
    triangle_setup,
)
from repro.texture.texture import MipmappedTexture
from tests.conftest import quad


def tri(coords, texture=0):
    vertices = [Vertex(*c) for c in coords]
    return Triangle(vertices[0], vertices[1], vertices[2], texture=texture)


class TestSetup:
    def test_covers_interior_and_excludes_exterior(self):
        eq = triangle_setup(tri([(0, 0), (10, 0), (0, 10)]))
        inside = eq.covers(np.array([2.5]), np.array([2.5]))
        outside = eq.covers(np.array([9.5]), np.array([9.5]))
        assert inside[0] and not outside[0]

    def test_winding_is_normalised(self):
        cw = triangle_setup(tri([(0, 0), (10, 0), (0, 10)]))
        ccw = triangle_setup(tri([(0, 0), (0, 10), (10, 0)]))
        px = np.array([1.5, 8.0])
        py = np.array([1.5, 8.0])
        assert (cw.covers(px, py) == ccw.covers(px, py)).all()

    def test_double_area_positive(self):
        eq = triangle_setup(tri([(0, 0), (0, 10), (10, 0)]))
        assert eq.double_area == pytest.approx(100.0)


class TestRasterizeTriangle:
    def test_degenerate_returns_none(self):
        assert rasterize_triangle(tri([(0, 0), (5, 5), (10, 10)]), 64, 64) is None

    def test_offscreen_returns_none(self):
        assert rasterize_triangle(tri([(100, 100), (110, 100), (100, 110)]), 64, 64) is None

    def test_covers_no_pixel_centre_returns_none(self):
        # A sliver between two pixel-centre columns.
        sliver = tri([(3.6, 0), (3.9, 0), (3.75, 40)])
        assert rasterize_triangle(sliver, 64, 64) is None

    def test_axis_aligned_right_triangle_pixel_count(self):
        result = rasterize_triangle(tri([(0, 0), (8, 0), (0, 8)]), 64, 64)
        # Pixel centres strictly inside x + y < 8: rows of 7, 6, ... 0.
        # (The diagonal is not a top-left edge, so it is excluded; the
        # matching quad half owns it — see the shared-diagonal test.)
        assert len(result["x"]) == 28

    def test_clips_to_screen(self):
        result = rasterize_triangle(tri([(-8, -8), (16, -8), (-8, 16)]), 64, 64)
        assert len(result["x"]) > 0
        assert (result["x"] >= 0).all() and (result["y"] >= 0).all()

    def test_scanline_order(self):
        result = rasterize_triangle(tri([(0, 0), (10, 0), (0, 10)]), 64, 64)
        y = result["y"]
        x = result["x"]
        assert (np.diff(y) >= 0).all()
        same_row = np.diff(y) == 0
        assert (np.diff(x)[same_row] > 0).all()

    def test_interpolates_texture_coordinates(self):
        t = Triangle(
            Vertex(0, 0, 0, 0), Vertex(16, 0, 32, 0), Vertex(0, 16, 0, 32)
        )
        result = rasterize_triangle(t, 64, 64)
        # The mapping is u = 2x, v = 2y at pixel centres.
        assert result["u"] == pytest.approx(2 * (result["x"] + 0.5))
        assert result["v"] == pytest.approx(2 * (result["y"] + 0.5))
        # scale 2 -> base mip level 1.
        assert (result["level"] == 1).all()

    def test_shared_quad_diagonal_drawn_exactly_once(self):
        a, b = quad(0, 0, 16)
        ra = rasterize_triangle(a, 64, 64, 0)
        rb = rasterize_triangle(b, 64, 64, 1)
        assert len(ra["x"]) + len(rb["x"]) == 256
        keys_a = set(zip(ra["x"].tolist(), ra["y"].tolist()))
        keys_b = set(zip(rb["x"].tolist(), rb["y"].tolist()))
        assert not keys_a & keys_b

    @settings(max_examples=60, deadline=None)
    @given(
        x0=st.integers(min_value=0, max_value=40),
        y0=st.integers(min_value=0, max_value=40),
        size=st.integers(min_value=1, max_value=20),
    )
    def test_property_quad_pixel_count_is_exact(self, x0, y0, size):
        """Two triangles of any on-screen quad cover size*size pixels once."""
        total = 0
        seen = set()
        for index, t in enumerate(quad(x0, y0, size)):
            result = rasterize_triangle(t, 64, 64, index)
            if result is None:
                continue
            total += len(result["x"])
            for key in zip(result["x"].tolist(), result["y"].tolist()):
                assert key not in seen
                seen.add(key)
        clipped_w = min(x0 + size, 64) - x0
        clipped_h = min(y0 + size, 64) - y0
        assert total == clipped_w * clipped_h

    @settings(max_examples=40, deadline=None)
    @given(
        coords=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=63),
                st.floats(min_value=0, max_value=63),
            ),
            min_size=3,
            max_size=3,
        )
    )
    def test_property_fragment_count_close_to_area(self, coords):
        """Pixel count approximates geometric area for random triangles."""
        triangle = tri(coords)
        result = rasterize_triangle(triangle, 64, 64)
        count = 0 if result is None else len(result["x"])
        area = triangle.area()
        # Sampling error is bounded by roughly half the perimeter.
        perimeter = sum(
            np.hypot(a[0] - b[0], a[1] - b[1])
            for a, b in zip(coords, coords[1:] + coords[:1])
        )
        assert abs(count - area) <= 0.75 * perimeter + 2


class TestMipSelection:
    def test_magnified_stays_level_zero(self):
        assert mip_level_for_scale(0.25) == 0
        assert mip_level_for_scale(1.0) == 0

    def test_powers_of_two(self):
        assert mip_level_for_scale(2.0) == 1
        assert mip_level_for_scale(4.0) == 2
        assert mip_level_for_scale(3.9) == 1

    def test_clamped(self):
        assert mip_level_for_scale(1e9) == 15


class TestRasterizeScene:
    def test_preserves_triangle_order(self, flat_scene):
        fragments = flat_scene.fragments()
        assert (np.diff(fragments.triangle) >= 0).all()

    def test_full_tiling_draws_every_pixel_once(self, flat_scene):
        fragments = flat_scene.fragments()
        assert len(fragments) == 64 * 64
        keys = fragments.y.astype(np.int64) * 64 + fragments.x
        assert len(np.unique(keys)) == 64 * 64

    def test_triangle_pixel_counts_sum_to_total(self, overdraw_scene):
        fragments = overdraw_scene.fragments()
        counts = fragments.triangle_pixel_counts()
        assert counts.sum() == len(fragments)
        assert len(counts) == overdraw_scene.num_triangles

    def test_empty_scene_yields_empty_buffer(self):
        scene = Scene("empty", 32, 32, [MipmappedTexture(8, 8)])
        fragments = rasterize_scene(scene)
        assert len(fragments) == 0
        assert fragments.num_triangles == 0


class TestFragmentBuffer:
    def test_select_preserves_order(self, flat_scene):
        fragments = flat_scene.fragments()
        mask = fragments.x < 8
        subset = fragments.select(mask)
        assert len(subset) == int(mask.sum())
        assert (np.diff(subset.triangle) >= 0).all()

    def test_concatenate_empty(self):
        assert len(FragmentBuffer.concatenate([], 3)) == 0

    def test_mismatched_columns_rejected(self):
        import pytest as _pytest
        from repro.errors import ConfigurationError

        z3 = np.zeros(3)
        z2 = np.zeros(2)
        with _pytest.raises(ConfigurationError):
            FragmentBuffer(z3, z3, z3, z3, z3, z3, z2, 1)

    def test_iter_rows_matches_columns(self, flat_scene):
        fragments = flat_scene.fragments().select(np.arange(5))
        rows = list(fragments.iter_rows())
        assert len(rows) == 5
        assert rows[0][0] == int(fragments.x[0])

"""Tests for procedural textures and the framebuffer renderer."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry import Scene, Triangle, Vertex
from repro.render import (
    CheckerTexture,
    GradientTexture,
    NoiseTexture,
    default_palette,
    render_scene,
)
from repro.texture.texture import MipmappedTexture
from tests.conftest import quad


def gradient_scene(size=64, texel_scale=1.0, z=0.0):
    """The whole screen mapped 1:1 onto one gradient texture."""
    scene = Scene("grad", size, size, [MipmappedTexture(64, 64)])
    for tri in quad(0, 0, size, texel_scale=texel_scale):
        scene.add(
            Triangle(
                Vertex(tri.v0.x, tri.v0.y, tri.v0.u, tri.v0.v, z),
                Vertex(tri.v1.x, tri.v1.y, tri.v1.u, tri.v1.v, z),
                Vertex(tri.v2.x, tri.v2.y, tri.v2.u, tri.v2.v, z),
            )
        )
    return scene


class TestProceduralTextures:
    def run_texture(self, texture, n=4, width=64):
        level = np.zeros(n, dtype=np.int64)
        i = np.arange(n, dtype=np.int64)
        j = np.zeros(n, dtype=np.int64)
        w = np.full(n, width, dtype=np.int64)
        return texture.texel_colors(level, i, j, w, w)

    def test_checker_alternates(self):
        checker = CheckerTexture(checks=64)  # one texel per check at 64 wide
        colors = self.run_texture(checker, n=4, width=64)
        assert (colors[0] == colors[2]).all()
        assert not (colors[0] == colors[1]).all()

    def test_checker_deep_levels_converge_to_mean(self):
        checker = CheckerTexture(color_a=(1, 1, 1), color_b=(0, 0, 0))
        level = np.array([10], dtype=np.int64)
        ones = np.ones(1, dtype=np.int64)
        color = checker.texel_colors(level, ones, ones, ones, ones)
        assert color[0] == pytest.approx([0.5, 0.5, 0.5])

    def test_checker_validation(self):
        with pytest.raises(ConfigurationError):
            CheckerTexture(checks=0)

    def test_gradient_is_linear_in_coordinates(self):
        colors = self.run_texture(GradientTexture(), n=64, width=64)
        expected = (np.arange(64) + 0.5) / 64
        assert colors[:, 0] == pytest.approx(expected)

    def test_noise_is_deterministic_and_in_range(self):
        noise = NoiseTexture(seed=3)
        a = self.run_texture(noise, n=16)
        b = self.run_texture(noise, n=16)
        assert (a == b).all()
        assert (a >= 0).all() and (a <= 1).all()
        # Not constant.
        assert a[:, 0].std() > 0

    def test_default_palette_variety(self):
        palette = default_palette(6)
        assert len(palette) == 6
        kinds = {type(texture).__name__ for texture in palette}
        assert len(kinds) == 3
        with pytest.raises(ConfigurationError):
            default_palette(0)


class TestRenderScene:
    def test_output_shape_and_background(self):
        scene = Scene("empty", 16, 8, [MipmappedTexture(8, 8)])
        image = render_scene(scene)
        assert image.shape == (8, 16, 3)
        assert image.dtype == np.uint8
        # Uncovered screen stays at the background colour.
        assert len(np.unique(image.reshape(-1, 3), axis=0)) == 1

    def test_gradient_reproduced_exactly(self):
        """The filtering oracle: a linear texture pattern sampled at
        1:1 with bilinear filtering must come back linear in x."""
        scene = gradient_scene()
        image = render_scene(scene, [GradientTexture()]).astype(float) / 255.0
        red_row = image[32, :, 0]
        expected = (np.arange(64) + 0.5) / 64
        assert red_row == pytest.approx(expected, abs=2 / 255)

    def test_trilinear_blend_under_minification(self):
        """At texel_scale 2 the sampler blends level 1; the gradient is
        linear at every level, so the result must stay the ramp."""
        scene = gradient_scene(texel_scale=2.0)
        image = render_scene(scene, [GradientTexture()]).astype(float) / 255.0
        red_row = image[32, :, 0]
        expected = 2 * (np.arange(64) + 0.5) / 64 % 1.0
        # Wrapping makes the tail ramp restart; compare the first half.
        assert red_row[:30] == pytest.approx(expected[:30], abs=0.03)

    def test_depth_test_keeps_closest(self):
        scene = Scene("two", 16, 16, [MipmappedTexture(8, 8), MipmappedTexture(8, 8)])
        far_quad = quad(0, 0, 16, texture=0)
        near_quad = quad(0, 0, 16, texture=1)
        for tri in far_quad:
            scene.add(Triangle(
                Vertex(tri.v0.x, tri.v0.y, tri.v0.u, tri.v0.v, 5.0),
                Vertex(tri.v1.x, tri.v1.y, tri.v1.u, tri.v1.v, 5.0),
                Vertex(tri.v2.x, tri.v2.y, tri.v2.u, tri.v2.v, 5.0),
                texture=0,
            ))
        for tri in near_quad:
            scene.add(Triangle(
                Vertex(tri.v0.x, tri.v0.y, tri.v0.u, tri.v0.v, 1.0),
                Vertex(tri.v1.x, tri.v1.y, tri.v1.u, tri.v1.v, 1.0),
                Vertex(tri.v2.x, tri.v2.y, tri.v2.u, tri.v2.v, 1.0),
                texture=1,
            ))
        white = CheckerTexture((1, 1, 1), (1, 1, 1))
        black = CheckerTexture((0, 0, 0), (0, 0, 0))
        with_z = render_scene(scene, [white, black], depth_test=True)
        assert with_z[8, 8].tolist() == [0, 0, 0]  # near (black) wins
        # Painter's order: the near quad was submitted last, same result;
        # reverse submission shows the difference.
        reversed_scene = Scene(
            "rev", 16, 16, [MipmappedTexture(8, 8), MipmappedTexture(8, 8)]
        )
        for tri in scene.triangles[2:] + scene.triangles[:2]:
            reversed_scene.add(tri)
        painter = render_scene(reversed_scene, [white, black], depth_test=False)
        zbuffer = render_scene(reversed_scene, [white, black], depth_test=True)
        assert painter[8, 8].tolist() == [255, 255, 255]  # far drawn last
        assert zbuffer[8, 8].tolist() == [0, 0, 0]        # z still wins

    def test_palette_size_validated(self):
        scene = Scene("two", 8, 8, [MipmappedTexture(8, 8), MipmappedTexture(8, 8)])
        with pytest.raises(ConfigurationError):
            render_scene(scene, [GradientTexture()])

    def test_renders_generated_benchmark_scene(self, tiny_bench_scene):
        image = render_scene(tiny_bench_scene)
        assert image.shape == (tiny_bench_scene.height, tiny_bench_scene.width, 3)
        # The frame is mostly covered: background shouldn't dominate.
        background = np.array([int(0.05 * 255 + 0.5)] * 2 + [int(0.08 * 255 + 0.5)])
        covered = (image != background).any(axis=2).mean()
        assert covered > 0.9


class TestNodeViews:
    def test_composite_reproduces_full_frame(self, tiny_bench_scene):
        """The ideal video merge: node views partition the frame."""
        from repro.distribution import BlockInterleaved
        from repro.render import render_node_views, render_scene
        from repro.render.procedural import default_palette

        palette = default_palette(len(tiny_bench_scene.textures))
        dist = BlockInterleaved(4, 16)
        full = render_scene(tiny_bench_scene, palette)
        views = render_node_views(tiny_bench_scene, dist, palette)
        assert len(views) == 4

        owners = dist.owner_map(tiny_bench_scene.width, tiny_bench_scene.height)
        composite = np.zeros_like(full)
        for node, view in enumerate(views):
            mask = owners == node
            composite[mask] = view[mask]
        assert (composite == full).all()

    def test_node_views_disjoint_content(self, tiny_bench_scene):
        from repro.distribution import ScanLineInterleaved
        from repro.render import render_node_views
        from repro.render.procedural import default_palette

        palette = default_palette(len(tiny_bench_scene.textures))
        dist = ScanLineInterleaved(2, 1)
        views = render_node_views(tiny_bench_scene, dist, palette)
        # Node 0 owns even rows: node 1's even rows are background.
        assert (views[1][0] == views[1][0][0]).all()
        assert (views[0][1] == views[0][1][0]).all()

"""Tests for coverage routing, emit orders and the new experiments."""

from dataclasses import replace

import numpy as np
import pytest

from repro.analysis import experiments
from repro.core import MachineConfig, simulate_machine
from repro.core.routing import build_routed_work, route_by_coverage
from repro.distribution import BlockInterleaved
from repro.errors import ConfigurationError
from repro.workloads import SCENE_SPECS
from repro.workloads.generator import generate_scene

SCALE = 0.0625


class TestCoverageRouting:
    def test_coverage_is_subset_of_bbox(self, tiny_bench_scene):
        dist = BlockInterleaved(8, 8)
        bbox = build_routed_work(tiny_bench_scene, dist, cache_spec="perfect")
        oracle = build_routed_work(
            tiny_bench_scene, dist, cache_spec="perfect", route_by="coverage"
        )
        for node in range(8):
            assert set(oracle.triangles[node]) <= set(bbox.triangles[node])

    def test_coverage_routes_exactly_covering_nodes(self, flat_scene):
        dist = BlockInterleaved(4, 8)
        work = build_routed_work(
            flat_scene, dist, cache_spec="perfect", route_by="coverage"
        )
        for node in range(4):
            assert (work.pixels[node] > 0).all()

    def test_oracle_never_slower(self, tiny_bench_scene):
        dist = BlockInterleaved(8, 4)
        config = MachineConfig(distribution=dist, cache="perfect")
        bbox_work = build_routed_work(tiny_bench_scene, dist, cache_spec="perfect")
        oracle_work = build_routed_work(
            tiny_bench_scene, dist, cache_spec="perfect", route_by="coverage"
        )
        t_bbox = simulate_machine(tiny_bench_scene, config, routed=bbox_work).cycles
        t_oracle = simulate_machine(tiny_bench_scene, config, routed=oracle_work).cycles
        assert t_oracle <= t_bbox

    def test_route_by_validation(self, flat_scene):
        with pytest.raises(ConfigurationError):
            build_routed_work(
                flat_scene, BlockInterleaved(4, 8), route_by="psychic"
            )

    def test_route_by_coverage_helper(self):
        pixel_matrix = np.array([0, 3, 0, 2, 0, 0, 5, 1])  # 2 tris x 4 nodes
        routed = route_by_coverage(pixel_matrix, 2, 4)
        assert routed[0].tolist() == [1, 3]
        assert routed[1].tolist() == [2, 3]


class TestEmitOrders:
    def test_orders_preserve_content(self):
        base = SCENE_SPECS["blowout775"]
        scenes = {
            order: generate_scene(replace(base, emit_order=order), scale=SCALE)
            for order in ("clustered", "raster", "random")
        }
        counts = {order: scene.num_triangles for order, scene in scenes.items()}
        assert len(set(counts.values())) == 1
        pixel_totals = {
            order: len(scene.fragments()) for order, scene in scenes.items()
        }
        assert len(set(pixel_totals.values())) == 1

    def test_raster_order_sorted_by_y(self):
        spec = replace(SCENE_SPECS["blowout775"], emit_order="raster")
        scene = generate_scene(spec, scale=SCALE)
        # Objects are emitted in centre-y order; estimate each object's
        # centre as the mean over its 18 triangles' vertices.
        per_object = scene.num_triangles // 18
        centres = []
        for index in range(per_object):
            tris = scene.triangles[index * 18 : (index + 1) * 18]
            centres.append(np.mean([v.y for t in tris for v in t.vertices]))
        assert (np.diff(centres) >= -1e-6).all()

    def test_invalid_order_rejected(self):
        with pytest.raises(ConfigurationError):
            replace(SCENE_SPECS["blowout775"], emit_order="spiral")


class TestNewExperiments:
    def test_ablation_routing_text(self):
        text = experiments.ablation_routing(SCALE, num_processors=8)
        assert "oracle" in text and "setup overhead" in text

    def test_ablation_order_text(self):
        text = experiments.ablation_submission_order(SCALE, num_processors=8)
        assert "clustered" in text and "random" in text

    def test_seed_sensitivity_text(self):
        text = experiments.seed_sensitivity(SCALE, seeds=(104, 1), num_processors=4)
        assert "seed" in text
        assert "104" in text


class TestTexelFormat:
    def test_layout_16bit_packs_more_texels(self):
        from repro.texture import MipmappedTexture, TextureMemoryLayout

        narrow = TextureMemoryLayout([MipmappedTexture(64, 64)], bytes_per_texel=2)
        wide = TextureMemoryLayout([MipmappedTexture(64, 64)])
        assert narrow.texels_per_line == 32
        assert narrow.block_shape == (8, 4)
        assert narrow.total_lines < wide.total_lines

    def test_bad_texel_size_rejected(self):
        from repro.texture import MipmappedTexture, TextureMemoryLayout

        with pytest.raises(ConfigurationError):
            TextureMemoryLayout([MipmappedTexture(8, 8)], bytes_per_texel=3)

    def test_16bit_texels_cost_fewer_bytes(self, tiny_bench_scene):
        from repro.texture import TextureMemoryLayout

        dist = BlockInterleaved(8, 16)
        results = {}
        for bpt in (2, 4):
            layout = TextureMemoryLayout(tiny_bench_scene.textures, bytes_per_texel=bpt)
            work = build_routed_work(tiny_bench_scene, dist, cache_spec="lru", layout=layout)
            results[bpt] = work.cache.misses * 64
        assert results[2] < results[4]

    def test_fetch_granularity_follows_layout(self, tiny_bench_scene):
        from repro.texture import TextureMemoryLayout

        layout = TextureMemoryLayout(tiny_bench_scene.textures, bytes_per_texel=2)
        work = build_routed_work(
            tiny_bench_scene, BlockInterleaved(4, 16), cache_spec="lru", layout=layout
        )
        assert work.cache.texels_fetched == work.cache.misses * 32

    def test_ablation_text(self):
        text = experiments.ablation_texel_format(SCALE, num_processors=4)
        assert "16-bit" in text and "8x4" in text

    def test_interleave_pattern_text(self):
        text = experiments.ablation_interleave_pattern(SCALE, widths=(16,))
        assert "morton" in text

"""Tests for the experiment job service (`repro.service`).

Covers the job state machine (queued → running → done/failed/timed-out),
retry/backoff scheduling with an injected fake clock, duplicate-submission
coalescing on the content-addressed result key, HTTP endpoint round trips
against an ephemeral server, worker-pool crash recovery, and the cluster
machinery: FIFO requeue ordering, tenant-fair queuing, monotonic duration
accounting, backpressure, client-disconnect handling, and the remote
worker lease/heartbeat/requeue-on-expiry protocol.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import struct
import threading
import time
from pathlib import Path

import pytest

from repro import obs, pipeline
from repro.analysis.experiments.registry import EXPERIMENTS
from repro.cli import main
from repro.errors import (
    BackpressureError,
    ConfigurationError,
    ServiceError,
    SimulationError,
    StaleLeaseError,
)
from repro.service import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TIMED_OUT,
    Job,
    JobQueue,
    LeaseManager,
    ResultStore,
    Scheduler,
    ServiceClient,
    WorkerNode,
    make_server,
    parse_submission,
    spec_from_payload,
)

SCALE = 0.0625
SIM_PAYLOAD = {"scene": "truc640", "scale": SCALE, "processors": 4, "size": 16}

#: Marker file (via env) letting fork-side helpers act once, then succeed.
_MARKER_ENV = "REPRO_TEST_SERVICE_MARKER"


def _kill_once(payload):
    """Worker-side: die hard on the first run, succeed on the retry."""
    marker = Path(os.environ[_MARKER_ENV])
    if not marker.exists():
        marker.write_text("boom")
        os.kill(os.getpid(), signal.SIGKILL)
    return {"key": "k", "text": "survived", "elapsed_seconds": 0.0}


def _sleep_forever(payload):
    time.sleep(60.0)
    return {"key": "k", "text": "slept", "elapsed_seconds": 60.0}


@pytest.fixture
def isolated_store(tmp_path):
    """Give each test its own artifact store (memory + private disk tier)."""
    previous = os.environ.get(pipeline.ARTIFACT_DIR_ENV_VAR)
    disk = tmp_path / "artifacts"
    os.environ[pipeline.ARTIFACT_DIR_ENV_VAR] = str(disk)
    pipeline.configure(disk_dir=disk)
    yield
    if previous is None:
        os.environ.pop(pipeline.ARTIFACT_DIR_ENV_VAR, None)
    else:
        os.environ[pipeline.ARTIFACT_DIR_ENV_VAR] = previous
    pipeline.configure(disk_dir=previous)


@pytest.fixture
def make_scheduler():
    """Scheduler factory that guarantees teardown."""
    created = []

    def factory(**kwargs):
        scheduler = Scheduler(**kwargs)
        created.append(scheduler)
        return scheduler

    yield factory
    for scheduler in created:
        scheduler.stop(timeout=5.0)


@pytest.fixture
def echo_experiment():
    """A registered throwaway experiment with a trivial runner."""
    name = "svc-test-echo"
    EXPERIMENTS[name] = ("service test echo", lambda scale: f"echo@{scale:g}")
    yield name
    del EXPERIMENTS[name]


class TestJobSpec:
    def test_experiment_spec_and_key(self):
        spec = spec_from_payload({"experiment": "table1", "scale": 0.25})
        assert spec.kind == "experiment"
        assert spec.result_key() == "experiment/table1@0.25"

    def test_simulate_key_is_deterministic_and_discriminating(self):
        first = spec_from_payload(dict(SIM_PAYLOAD))
        second = spec_from_payload(dict(SIM_PAYLOAD))
        assert first.result_key() == second.result_key()
        other = spec_from_payload({**SIM_PAYLOAD, "processors": 8})
        assert other.result_key() != first.result_key()

    def test_payload_round_trip(self):
        for payload in ({"experiment": "table1"}, dict(SIM_PAYLOAD)):
            spec = spec_from_payload(payload)
            assert spec_from_payload(spec.to_payload()) == spec

    def test_rejects_unknown_names_and_fields(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            spec_from_payload({"experiment": "fig99"})
        with pytest.raises(ConfigurationError, match="unknown scene"):
            spec_from_payload({"scene": "doom"})
        with pytest.raises(ConfigurationError, match="unknown family"):
            spec_from_payload({"scene": "quake", "family": "spiral"})
        with pytest.raises(ConfigurationError, match="unknown job field"):
            spec_from_payload({"scene": "quake", "colour": "red"})
        with pytest.raises(ConfigurationError, match="'scene' or a 'vt_scene'"):
            spec_from_payload({"scale": 0.5})

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError, match="scale"):
            spec_from_payload({"experiment": "table1", "scale": 2.0})
        with pytest.raises(ConfigurationError, match="processors"):
            spec_from_payload({"scene": "quake", "processors": 0})
        with pytest.raises(ConfigurationError, match="bus_ratio"):
            spec_from_payload({"scene": "quake", "bus_ratio": -1.0})

    def test_options_are_split_from_the_spec(self):
        spec, options = parse_submission(
            {**SIM_PAYLOAD, "priority": -5, "timeout": 2.5, "retries": 1}
        )
        assert options == {"priority": -5, "timeout": 2.5, "retries": 1}
        # Scheduling options must not change the content identity.
        assert spec.result_key() == spec_from_payload(dict(SIM_PAYLOAD)).result_key()
        with pytest.raises(ConfigurationError, match="timeout"):
            parse_submission({**SIM_PAYLOAD, "timeout": 0})


class TestJobQueue:
    def _job(self, priority=0):
        spec = spec_from_payload({"experiment": "table1"})
        return Job(id=f"j{priority}", spec=spec, priority=priority)

    def test_priority_then_fifo_order(self):
        queue = JobQueue()
        first, second, urgent = self._job(0), self._job(0), self._job(-1)
        second.id = "j-second"
        queue.push(first)
        queue.push(second)
        queue.push(urgent)
        assert [queue.pop().id for _ in range(3)] == [urgent.id, first.id, second.id]

    def test_requeue_jumps_the_line(self):
        queue = JobQueue()
        first, crashed = self._job(0), self._job(0)
        crashed.id = "j-crashed"
        queue.push(first)
        queue.push(crashed, front=True)
        assert queue.pop().id == crashed.id

    def test_pop_times_out_empty(self):
        queue = JobQueue()
        assert queue.pop(timeout=0.01) is None
        assert len(queue) == 0

    def test_requeued_jobs_replay_fifo(self):
        """Regression: interleaved requeues must replay in FIFO order.

        The old front-sequence counted downward, so a later requeue
        sorted *before* an earlier one (LIFO) — starvation-prone once
        lease expiries make requeues routine.
        """
        queue = JobQueue()
        fresh = self._job(0)
        requeued = []
        for index in range(3):
            job = self._job(0)
            job.id = f"j-requeue-{index}"
            requeued.append(job)
        queue.push(requeued[0], front=True)
        queue.push(fresh)
        queue.push(requeued[1], front=True)
        queue.push(requeued[2], front=True)
        order = [queue.pop().id for _ in range(4)]
        assert order == [job.id for job in requeued] + [fresh.id]
        # snapshot agrees with dispatch order here (single tenant).
        for job in requeued + [fresh]:
            queue.push(job, front=job is not fresh)
        assert [job.id for job in queue.snapshot()][:3] == [
            job.id for job in requeued
        ]

    def _tenant_job(self, name, tenant, priority=0):
        job = self._job(priority)
        job.id = name
        job.tenant = tenant
        return job

    def test_tenants_round_robin_within_a_priority(self):
        """One tenant flooding the queue cannot starve the others."""
        queue = JobQueue()
        for job in (
            self._tenant_job("a1", "alice"),
            self._tenant_job("a2", "alice"),
            self._tenant_job("a3", "alice"),
            self._tenant_job("b1", "bob"),
            self._tenant_job("c1", "carol"),
        ):
            queue.push(job)
        order = [queue.pop().id for _ in range(5)]
        assert order == ["a1", "b1", "c1", "a2", "a3"]
        assert queue.pop(timeout=0) is None

    def test_priority_beats_tenant_fairness(self):
        queue = JobQueue()
        queue.push(self._tenant_job("a1", "alice", priority=0))
        queue.push(self._tenant_job("b1", "bob", priority=-1))
        assert queue.pop().id == "b1"

    def test_tenant_depths(self):
        queue = JobQueue()
        queue.push(self._tenant_job("a1", "alice"))
        queue.push(self._tenant_job("a2", "alice"))
        queue.push(self._tenant_job("b1", "bob"), front=True)
        assert queue.tenant_depths() == {"alice": 2, "bob": 1}


class TestResultStore:
    def test_get_counts_peek_does_not(self, isolated_store):
        store = ResultStore()
        found, _ = store.get("some/key")
        assert not found and store.snapshot()["misses"] == 1
        store.put("some/key", {"text": "hi"})
        assert store.peek("some/key") == (True, {"text": "hi"})
        assert store.snapshot() == {"hits": 0, "misses": 1, "hit_rate": 0.0}
        found, payload = store.get("some/key")
        assert found and payload["text"] == "hi"
        assert store.snapshot()["hits"] == 1

    def test_results_survive_via_the_disk_tier(self, isolated_store, tmp_path):
        ResultStore().put("persist/key", {"text": "durable"})
        # A new in-memory store over the same directory sees the result.
        pipeline.configure(disk_dir=tmp_path / "artifacts")
        assert ResultStore().get("persist/key") == (True, {"text": "durable"})


class TestJobLifecycle:
    def test_queued_running_done(self, isolated_store, make_scheduler, echo_experiment):
        scheduler = make_scheduler(workers=0)
        job, deduped = scheduler.submit({"experiment": echo_experiment, "scale": SCALE})
        assert not deduped and job.state == QUEUED
        scheduler.start()
        done = scheduler.wait(job.id, timeout=30)
        assert done.state == DONE and done.attempts == 1 and done.error is None
        assert done.started_at is not None and done.finished_at is not None
        assert scheduler.result(job.result_key)["text"] == f"echo@{SCALE:g}"
        metrics = scheduler.metrics()
        assert metrics["jobs"][DONE] == 1 and metrics["counters"]["completed"] == 1

    def test_failure_is_terminal_with_the_error(self, isolated_store, make_scheduler):
        name = "svc-test-boom"
        EXPERIMENTS[name] = ("always fails", lambda scale: 1 / 0)
        try:
            scheduler = make_scheduler(workers=0, default_retries=0).start()
            job, _ = scheduler.submit({"experiment": name, "scale": SCALE})
            done = scheduler.wait(job.id, timeout=30)
            assert done.state == FAILED and "division" in done.error
            assert scheduler.metrics()["counters"]["failed"] == 1
            # A failed job releases its key: resubmission runs again.
            retry, deduped = scheduler.submit({"experiment": name, "scale": SCALE})
            assert not deduped and retry.id != job.id
        finally:
            del EXPERIMENTS[name]

    def test_unknown_job_id(self, make_scheduler):
        with pytest.raises(ServiceError, match="unknown job"):
            make_scheduler(workers=0).job("job-404")


class TestRetryBackoff:
    def test_exponential_backoff_schedule(self, isolated_store, make_scheduler):
        """Two failures then success: sleeps follow base * factor**n."""
        attempts = []
        name = "svc-test-flaky"
        def flaky(scale):
            attempts.append(scale)
            if len(attempts) < 3:
                raise RuntimeError(f"flake #{len(attempts)}")
            return "recovered"
        EXPERIMENTS[name] = ("flaky", flaky)
        sleeps = []
        try:
            scheduler = make_scheduler(
                workers=0,
                default_retries=3,
                backoff_base=0.5,
                backoff_factor=2.0,
                sleep=sleeps.append,
            ).start()
            job, _ = scheduler.submit({"experiment": name, "scale": SCALE})
            done = scheduler.wait(job.id, timeout=30)
            assert done.state == DONE and done.attempts == 3
            assert sleeps == [0.5, 1.0]
            assert scheduler.metrics()["counters"]["retries"] == 2
            assert scheduler.result(job.result_key)["text"] == "recovered"
        finally:
            del EXPERIMENTS[name]

    def test_budget_exhaustion_fails_after_all_retries(
        self, isolated_store, make_scheduler
    ):
        name = "svc-test-hopeless"
        EXPERIMENTS[name] = ("hopeless", lambda scale: 1 / 0)
        sleeps = []
        try:
            scheduler = make_scheduler(workers=0, sleep=sleeps.append).start()
            job, _ = scheduler.submit(
                {"experiment": name, "scale": SCALE, "retries": 2}
            )
            done = scheduler.wait(job.id, timeout=30)
            assert done.state == FAILED and done.attempts == 3
            assert len(sleeps) == 2  # one backoff between each attempt pair
        finally:
            del EXPERIMENTS[name]

    def test_backoff_is_capped(self, make_scheduler):
        scheduler = make_scheduler(backoff_base=10.0, backoff_max=15.0)
        job = Job(id="x", spec=spec_from_payload({"experiment": "table1"}), retries=5)
        job.attempts = 4
        sleeps = []
        scheduler._sleep = sleeps.append
        assert scheduler._backoff_or_finish(job, FAILED, "err")
        assert sleeps == [15.0]


class TestCoalescing:
    def test_live_duplicates_share_one_job(
        self, isolated_store, make_scheduler, echo_experiment
    ):
        scheduler = make_scheduler(workers=0)  # not started: jobs stay queued
        payload = {"experiment": echo_experiment, "scale": SCALE}
        first, deduped_first = scheduler.submit(payload)
        second, deduped_second = scheduler.submit(payload)
        assert not deduped_first and deduped_second
        assert second is first
        metrics = scheduler.metrics()
        assert metrics["counters"]["deduped"] == 1
        assert metrics["queue_depth"] == 1

    def test_resubmission_after_completion_hits_the_store(
        self, isolated_store, make_scheduler, echo_experiment
    ):
        scheduler = make_scheduler(workers=0).start()
        payload = {"experiment": echo_experiment, "scale": SCALE}
        first, _ = scheduler.submit(payload)
        scheduler.wait(first.id, timeout=30)
        second, deduped = scheduler.submit(payload)
        assert not deduped and second.id != first.id
        assert second.state == DONE and second.cached and second.attempts == 0
        snapshot = scheduler.metrics()["result_store"]
        assert snapshot["misses"] == 1 and snapshot["hits"] == 1
        assert scheduler.metrics()["counters"]["cache_hits"] == 1

    def test_different_options_same_computation_coalesce(
        self, isolated_store, make_scheduler, echo_experiment
    ):
        scheduler = make_scheduler(workers=0)
        first, _ = scheduler.submit({"experiment": echo_experiment, "priority": 3})
        second, deduped = scheduler.submit({"experiment": echo_experiment, "retries": 9})
        assert deduped and second is first


@pytest.fixture
def http_service(isolated_store, make_scheduler, echo_experiment):
    """A live ephemeral-port server + client around an inline scheduler."""
    scheduler = make_scheduler(workers=0).start()
    server = make_server(scheduler, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield ServiceClient(server.url), scheduler, echo_experiment
    server.shutdown()
    server.server_close()


class TestHTTP:
    def test_round_trip(self, http_service):
        client, _scheduler, experiment = http_service
        assert client.healthz()["status"] == "ok"
        job = client.submit({"experiment": experiment, "scale": SCALE})
        assert job["state"] in (QUEUED, "running", DONE) and not job["deduped"]
        done = client.wait(job["id"], timeout=30)
        assert done["state"] == DONE
        assert client.result(done["result_key"])["text"] == f"echo@{SCALE:g}"
        listing = client.jobs()
        assert any(entry["id"] == job["id"] for entry in listing["jobs"])

    def test_metrics_document_shape(self, http_service):
        client, _scheduler, experiment = http_service
        client.wait(client.submit({"experiment": experiment, "scale": SCALE})["id"], 30)
        metrics = client.metrics()
        assert metrics["queue_depth"] == 0
        assert metrics["jobs"][DONE] == 1
        for counter in ("retries", "timeouts", "pool_restarts", "deduped"):
            assert counter in metrics["counters"]
        assert set(metrics["result_store"]) == {"hits", "misses", "hit_rate"}
        assert "pipeline" in metrics
        # The obs registry snapshot mirrors the service counters and
        # carries the execute-span histogram for the one job that ran.
        snapshot = metrics["obs"]
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        assert snapshot["counters"]["service.submitted"] == 1
        assert snapshot["counters"]["service.completed"] == 1
        assert snapshot["gauges"]["service.queue_depth"] == 0
        assert snapshot["gauges"]["service.jobs{state=done}"] == 1
        assert snapshot["histograms"]["span.service.execute"]["count"] == 1

    def test_error_responses(self, http_service):
        client, _scheduler, _experiment = http_service
        with pytest.raises(ServiceError, match="unknown experiment"):
            client.submit({"experiment": "fig99"})
        with pytest.raises(ServiceError, match="unknown job"):
            client.job("job-404")
        with pytest.raises(ServiceError, match="no result stored"):
            client.result("simulate/never-ran")
        with pytest.raises(ServiceError, match="unknown path"):
            client._request("GET", "/nope")
        with pytest.raises(ServiceError, match="cannot reach service"):
            ServiceClient("http://127.0.0.1:9", timeout=0.5).healthz()

    def test_run_convenience(self, http_service):
        client, _scheduler, experiment = http_service
        payload = client.run({"experiment": experiment, "scale": SCALE}, timeout=30)
        assert payload["text"] == f"echo@{SCALE:g}"


class TestCliServiceVerbs:
    def test_list_includes_utility_commands(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for command in ("serve", "submit", "status", "dump-trace", "batch"):
            assert command in out
        assert "table1" in out and "fig8" in out

    def test_submit_and_status_verbs(self, http_service, capsys):
        client, _scheduler, experiment = http_service
        assert main(["submit", "--url", client.base_url, "--run", experiment,
                     "--scale", str(SCALE), "--wait"]) == 0
        out = capsys.readouterr().out
        assert f"echo@{SCALE:g}" in out
        submitted = json.loads(out[: out.rindex("}") + 1])
        assert main(["status", "--url", client.base_url, "--id", submitted["id"]]) == 0
        assert json.loads(capsys.readouterr().out)["state"] == DONE
        assert main(["status", "--url", client.base_url]) == 0
        assert "result_store" in json.loads(capsys.readouterr().out)

    def test_submit_rejects_bad_job_json(self, capsys):
        assert main(["submit", "--job", "{not json"]) == 2
        assert "--job is not valid JSON" in capsys.readouterr().err

    def test_unreachable_service_is_a_clean_error(self, capsys):
        assert main(["status", "--url", "http://127.0.0.1:9"]) == 2
        assert "cannot reach service" in capsys.readouterr().err


class TestPoolRecovery:
    def test_killed_worker_is_requeued_and_completes(
        self, isolated_store, make_scheduler, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(_MARKER_ENV, str(tmp_path / "crash-marker"))
        scheduler = make_scheduler(workers=1, executor=_kill_once).start()
        job, _ = scheduler.submit({"experiment": "table1", "scale": SCALE})
        done = scheduler.wait(job.id, timeout=60)
        assert done.state == DONE
        assert done.requeues == 1
        assert scheduler.result(job.result_key)["text"] == "survived"
        counters = scheduler.metrics()["counters"]
        assert counters["pool_restarts"] >= 1 and counters["requeues"] == 1

    def test_timeout_marks_the_job_timed_out(
        self, isolated_store, make_scheduler
    ):
        scheduler = make_scheduler(workers=1, executor=_sleep_forever).start()
        job, _ = scheduler.submit(
            {"experiment": "table1", "scale": SCALE, "timeout": 0.5, "retries": 0}
        )
        done = scheduler.wait(job.id, timeout=60)
        assert done.state == TIMED_OUT
        counters = scheduler.metrics()["counters"]
        assert counters["timeouts"] == 1
        # The stuck worker was reclaimed by restarting the pool.
        assert counters["pool_restarts"] >= 1


class TestDurations:
    """Durations are monotonic deltas; wall time is display-only."""

    @pytest.fixture
    def clocks(self, monkeypatch):
        from repro.service import jobs as jobs_module

        wall = {"t": 1_700_000_000.0}
        mono = {"t": 50.0}
        monkeypatch.setattr(jobs_module, "_WALL_CLOCK", lambda: wall["t"])
        monkeypatch.setattr(jobs_module, "_MONOTONIC_CLOCK", lambda: mono["t"])
        return wall, mono

    def test_duration_survives_a_backwards_clock_step(self, clocks):
        wall, mono = clocks
        job = Job(id="j", spec=spec_from_payload({"experiment": "table1"}))
        job.mark_started()
        wall["t"] -= 3600.0  # NTP steps the wall clock back one hour
        mono["t"] += 2.5
        job.finish(DONE)
        assert job.duration_seconds == 2.5
        # The wall-clock delta would have claimed a negative duration.
        assert job.finished_at - job.started_at < 0
        assert job.to_json()["duration_seconds"] == 2.5

    def test_mark_started_is_idempotent_across_requeues(self, clocks):
        wall, mono = clocks
        job = Job(id="j", spec=spec_from_payload({"experiment": "table1"}))
        job.mark_started()
        first_wall, first_mono = job.started_at, job.started_monotonic
        wall["t"] += 10.0
        mono["t"] += 10.0
        job.mark_started()  # a requeue re-dispatches the same job
        assert (job.started_at, job.started_monotonic) == (first_wall, first_mono)

    def test_unstarted_job_has_no_duration(self, clocks):
        job = Job(id="j", spec=spec_from_payload({"experiment": "table1"}))
        job.finish(DONE)  # a pure cache hit never ran
        assert job.duration_seconds is None

    def test_uptime_is_monotonic(self, make_scheduler):
        scheduler = make_scheduler(workers=0)
        scheduler._started_monotonic -= 7.0
        assert scheduler.metrics()["uptime_seconds"] >= 7.0
        assert scheduler.healthz()["uptime_seconds"] >= 7.0


class TestBackpressure:
    def test_submit_rejects_past_queue_depth(
        self, isolated_store, make_scheduler, echo_experiment
    ):
        scheduler = make_scheduler(workers=0, max_queue_depth=1)  # not started
        scheduler.submit({"experiment": echo_experiment, "scale": 0.5})
        with pytest.raises(BackpressureError, match="retry later"):
            scheduler.submit({"experiment": echo_experiment, "scale": 0.25})
        assert scheduler.metrics()["counters"]["rejected"] == 1

    def test_duplicates_and_cache_hits_bypass_backpressure(
        self, isolated_store, make_scheduler, echo_experiment
    ):
        scheduler = make_scheduler(workers=0, max_queue_depth=1)
        scheduler.results.put(
            spec_from_payload({"experiment": echo_experiment, "scale": 0.125}).result_key(),
            {"text": "cached"},
        )
        first, _ = scheduler.submit({"experiment": echo_experiment, "scale": 0.5})
        # A duplicate of the live job coalesces instead of rejecting.
        dup, deduped = scheduler.submit({"experiment": echo_experiment, "scale": 0.5})
        assert deduped and dup is first
        # A stored result is served even with the queue full.
        hit, _ = scheduler.submit({"experiment": echo_experiment, "scale": 0.125})
        assert hit.state == DONE and hit.cached

    def test_http_answers_429(self, isolated_store, make_scheduler, echo_experiment):
        scheduler = make_scheduler(workers=0, max_queue_depth=1)  # not started
        server = make_server(scheduler, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(server.url)
            client.submit({"experiment": echo_experiment, "scale": 0.5})
            with pytest.raises(ServiceError, match="retry later") as info:
                client.submit({"experiment": echo_experiment, "scale": 0.25})
            assert info.value.status == 429
        finally:
            server.shutdown()
            server.server_close()


class TestHTTPErrorMapping:
    def test_unknown_job_is_404_but_a_fault_is_500(self, http_service):
        client, scheduler, _experiment = http_service
        with pytest.raises(ServiceError, match="unknown job") as info:
            client.job("job-404")
        assert info.value.status == 404

        def broken_metrics():
            raise SimulationError("the scheduler tripped over itself")

        original = scheduler.metrics
        scheduler.metrics = broken_metrics
        try:
            with pytest.raises(ServiceError, match="tripped over itself") as info:
                client.metrics()
            assert info.value.status == 500
        finally:
            scheduler.metrics = original

    def test_client_disconnect_is_counted_not_crashed(
        self, isolated_store, make_scheduler, echo_experiment
    ):
        registry = obs.MetricsRegistry()
        scheduler = make_scheduler(workers=0, registry=registry)
        server = make_server(scheduler, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        gate = threading.Event()
        original = scheduler.metrics

        def blocked_metrics():
            gate.wait(5.0)
            return original()

        scheduler.metrics = blocked_metrics
        try:
            raw = socket.create_connection(server.server_address[:2], timeout=5.0)
            raw.sendall(b"GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n")
            # RST on close so the handler's write fails immediately.
            raw.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
            raw.close()
            time.sleep(0.1)
            gate.set()  # now the handler writes into the dead socket
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if registry.counter("service.http.disconnects").value >= 1:
                    break
                time.sleep(0.05)
            assert registry.counter("service.http.disconnects").value >= 1
            # The server is still healthy for the next client.
            assert ServiceClient(server.url).healthz()["status"] == "ok"
        finally:
            scheduler.metrics = original
            server.shutdown()
            server.server_close()


class FakeMonotonic:
    def __init__(self, start: float = 100.0) -> None:
        self.t = start

    def now(self) -> float:
        return self.t

    def advance(self, seconds: float) -> None:
        self.t += seconds


class TestLeaseLifecycle:
    """Two remote workers against one coordinator, fake lease clock."""

    def _coordinator(self, make_scheduler, **kwargs):
        # A private registry: worker-labeled counters must not leak
        # between tests that reuse worker names.
        scheduler = make_scheduler(
            workers=0, local=False, registry=obs.MetricsRegistry(), **kwargs
        )
        clock = FakeMonotonic()
        scheduler.leases = LeaseManager(timeout=5.0, clock=clock.now)
        return scheduler, clock

    def test_lease_heartbeat_expiry_requeue(
        self, isolated_store, make_scheduler, echo_experiment
    ):
        scheduler, clock = self._coordinator(make_scheduler)
        job1, _ = scheduler.submit({"experiment": echo_experiment, "scale": 0.5})
        job2, _ = scheduler.submit({"experiment": echo_experiment, "scale": 0.25})

        lease1 = scheduler.lease_next("alpha")
        lease2 = scheduler.lease_next("beta")
        assert (lease1.job, lease2.job) == (job1, job2)
        assert job1.state == RUNNING and job1.attempts == 1
        assert scheduler.lease_next("gamma") is None

        # alpha keeps heartbeating past the original deadline; beta
        # goes silent and its lease expires.
        clock.advance(3.0)
        scheduler.heartbeat_lease(lease1.id)
        clock.advance(3.0)  # t=106: beta expired at 105, alpha alive to 108
        scheduler._reap_once()
        assert job2.state == QUEUED and job2.requeues == 1
        assert job2.attempts == 0  # infrastructure loss, not a retry
        with pytest.raises(StaleLeaseError):
            scheduler.heartbeat_lease(lease2.id)

        # alpha delivers job1, then picks up the requeued job2.
        scheduler.complete_lease(
            lease1.id, {"key": job1.result_key, "text": "one"}
        )
        assert job1.state == DONE
        lease3 = scheduler.lease_next("alpha")
        assert lease3.job is job2
        scheduler.complete_lease(
            lease3.id, {"key": job2.result_key, "text": "two"}
        )
        assert job2.state == DONE
        assert scheduler.result(job2.result_key)["text"] == "two"

        counters = scheduler.metrics()["counters"]
        assert counters["leases"] == 3
        assert counters["lease_expiries"] == 1
        assert counters["requeues"] == 1
        assert counters["completed"] == 2
        assert counters["heartbeats"] == 1
        snapshot = scheduler.registry.snapshot()["counters"]
        assert snapshot["service.leases{worker=alpha}"] == 2
        assert snapshot["service.leases{worker=beta}"] == 1

    def test_expired_leases_requeue_in_fifo_order(
        self, isolated_store, make_scheduler, echo_experiment
    ):
        """Three in-flight jobs lost at once replay oldest-first."""
        scheduler, clock = self._coordinator(make_scheduler)
        jobs = [
            scheduler.submit({"experiment": echo_experiment, "scale": scale})[0]
            for scale in (0.5, 0.25, 0.125)
        ]
        for worker in ("w1", "w2", "w3"):
            scheduler.lease_next(worker)
        clock.advance(6.0)
        scheduler._reap_once()
        assert [job.state for job in jobs] == [QUEUED] * 3
        replay = [scheduler.lease_next("w1").job for _ in range(3)]
        assert replay == jobs

    def test_worker_failure_consumes_retry_budget_with_delay(
        self, isolated_store, make_scheduler, echo_experiment
    ):
        scheduler, _clock = self._coordinator(
            make_scheduler, backoff_base=0.01, backoff_factor=1.0
        )
        job, _ = scheduler.submit(
            {"experiment": echo_experiment, "scale": 0.5, "retries": 1}
        )
        lease = scheduler.lease_next("alpha")
        failed = scheduler.fail_lease(lease.id, "tile went missing")
        assert failed.state == QUEUED and failed.error == "tile went missing"
        assert scheduler.metrics()["delayed_retries"] == 1
        assert scheduler.lease_next("alpha") is None  # still backing off
        time.sleep(0.05)
        scheduler._reap_once()
        lease = scheduler.lease_next("alpha")
        assert lease is not None and lease.job is job and job.attempts == 2
        done = scheduler.fail_lease(lease.id, "tile went missing again")
        assert done.state == FAILED and "again" in done.error
        assert scheduler.metrics()["counters"]["retries"] == 1

    def test_stale_completion_still_stores_the_result(
        self, isolated_store, make_scheduler, echo_experiment
    ):
        scheduler, clock = self._coordinator(make_scheduler)
        job, _ = scheduler.submit({"experiment": echo_experiment, "scale": 0.5})
        lease = scheduler.lease_next("alpha")
        clock.advance(6.0)
        scheduler._reap_once()  # expired: the job went back to the queue
        with pytest.raises(StaleLeaseError):
            scheduler.complete_lease(
                lease.id, {"key": job.result_key, "text": "late but right"}
            )
        # The content-addressed result was kept; the requeued job
        # coalesces on it at its next dispatch instead of recomputing.
        next_lease = scheduler.lease_next("beta")
        assert next_lease is None
        assert job.state == DONE and job.cached
        assert scheduler.result(job.result_key)["text"] == "late but right"


@pytest.fixture
def coordinator(isolated_store, make_scheduler, echo_experiment):
    """A started remote-only coordinator behind a live HTTP server."""
    scheduler = make_scheduler(
        workers=0,
        local=False,
        lease_timeout=5.0,
        reaper_interval=0.02,
        registry=obs.MetricsRegistry(),
    ).start()
    server = make_server(scheduler, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield ServiceClient(server.url), scheduler, echo_experiment
    server.shutdown()
    server.server_close()


class TestLeaseProtocolHTTP:
    def test_full_round_trip(self, coordinator):
        client, scheduler, experiment = coordinator
        assert client.lease("w1") is None  # 204: nothing queued
        job = client.submit({"experiment": experiment, "scale": SCALE})
        lease = client.lease("w1")
        assert lease["job"]["id"] == job["id"]
        assert lease["payload"] == {"experiment": experiment, "scale": SCALE}
        assert client.heartbeat(lease["lease_id"])["lease_id"] == lease["lease_id"]
        listing = client.leases()["leases"]
        assert [entry["worker"] for entry in listing] == ["w1"]
        record = client.complete(
            lease["lease_id"], {"key": job["result_key"], "text": "over http"}
        )
        assert record["state"] == DONE
        assert client.result(job["result_key"])["text"] == "over http"
        assert client.leases()["leases"] == []
        with pytest.raises(ServiceError) as info:
            client.heartbeat(lease["lease_id"])
        assert info.value.status == 410

    def test_lease_requires_a_worker_name(self, coordinator):
        client, _scheduler, _experiment = coordinator
        with pytest.raises(ServiceError, match="worker"):
            client._request("POST", "/leases", body={})

    def test_fail_over_http_exhausts_the_budget(self, coordinator):
        client, _scheduler, experiment = coordinator
        job = client.submit(
            {"experiment": experiment, "scale": SCALE, "retries": 0}
        )
        lease = client.lease("w1")
        record = client.fail(lease["lease_id"], "worker exploded")
        assert record["state"] == FAILED and "exploded" in record["error"]
        done = client.job(job["id"])
        assert done["state"] == FAILED


class TestWorkerNode:
    def test_worker_completes_jobs_end_to_end(self, coordinator):
        client, scheduler, experiment = coordinator
        first = client.submit({"experiment": experiment, "scale": 0.5})
        second = client.submit({"experiment": experiment, "scale": 0.25})
        node = WorkerNode(client.base_url, worker_id="node-a", poll=0.02)
        assert node.run(max_jobs=2) == 2
        assert client.job(first["id"])["state"] == DONE
        assert client.job(second["id"])["state"] == DONE
        assert client.result(first["result_key"])["text"] == "echo@0.5"
        snapshot = client.metrics()["obs"]["counters"]
        assert snapshot["service.leases{worker=node-a}"] == 2
        assert scheduler.metrics()["counters"]["lease_expiries"] == 0

    def test_worker_reports_execution_failures(self, coordinator):
        client, _scheduler, experiment = coordinator
        job = client.submit(
            {"experiment": experiment, "scale": 0.5, "retries": 0}
        )

        def explode(payload):
            raise RuntimeError("texel bus meltdown")

        node = WorkerNode(
            client.base_url, worker_id="node-b", poll=0.02, executor=explode
        )
        node.run(max_jobs=1)
        assert node.failed == 1 and node.completed == 0
        record = client.job(job["id"])
        assert record["state"] == FAILED and "meltdown" in record["error"]

    def test_tenant_option_flows_to_the_job(self, coordinator):
        client, _scheduler, experiment = coordinator
        job = client.submit(
            {"experiment": experiment, "scale": SCALE, "tenant": "render-team"}
        )
        assert job["tenant"] == "render-team"
        metrics = client.metrics()
        assert metrics["tenants"] == {"render-team": 1}
        with pytest.raises(ServiceError, match="tenant"):
            client.submit({"experiment": experiment, "tenant": "  "})

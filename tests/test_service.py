"""Tests for the experiment job service (`repro.service`).

Covers the job state machine (queued → running → done/failed/timed-out),
retry/backoff scheduling with an injected fake clock, duplicate-submission
coalescing on the content-addressed result key, HTTP endpoint round trips
against an ephemeral server, and worker-pool crash recovery.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from pathlib import Path

import pytest

from repro import pipeline
from repro.analysis.experiments.registry import EXPERIMENTS
from repro.cli import main
from repro.errors import ConfigurationError, ServiceError
from repro.service import (
    DONE,
    FAILED,
    QUEUED,
    TIMED_OUT,
    Job,
    JobQueue,
    ResultStore,
    Scheduler,
    ServiceClient,
    make_server,
    parse_submission,
    spec_from_payload,
)

SCALE = 0.0625
SIM_PAYLOAD = {"scene": "truc640", "scale": SCALE, "processors": 4, "size": 16}

#: Marker file (via env) letting fork-side helpers act once, then succeed.
_MARKER_ENV = "REPRO_TEST_SERVICE_MARKER"


def _kill_once(payload):
    """Worker-side: die hard on the first run, succeed on the retry."""
    marker = Path(os.environ[_MARKER_ENV])
    if not marker.exists():
        marker.write_text("boom")
        os.kill(os.getpid(), signal.SIGKILL)
    return {"key": "k", "text": "survived", "elapsed_seconds": 0.0}


def _sleep_forever(payload):
    time.sleep(60.0)
    return {"key": "k", "text": "slept", "elapsed_seconds": 60.0}


@pytest.fixture
def isolated_store(tmp_path):
    """Give each test its own artifact store (memory + private disk tier)."""
    previous = os.environ.get(pipeline.ARTIFACT_DIR_ENV_VAR)
    disk = tmp_path / "artifacts"
    os.environ[pipeline.ARTIFACT_DIR_ENV_VAR] = str(disk)
    pipeline.configure(disk_dir=disk)
    yield
    if previous is None:
        os.environ.pop(pipeline.ARTIFACT_DIR_ENV_VAR, None)
    else:
        os.environ[pipeline.ARTIFACT_DIR_ENV_VAR] = previous
    pipeline.configure(disk_dir=previous)


@pytest.fixture
def make_scheduler():
    """Scheduler factory that guarantees teardown."""
    created = []

    def factory(**kwargs):
        scheduler = Scheduler(**kwargs)
        created.append(scheduler)
        return scheduler

    yield factory
    for scheduler in created:
        scheduler.stop(timeout=5.0)


@pytest.fixture
def echo_experiment():
    """A registered throwaway experiment with a trivial runner."""
    name = "svc-test-echo"
    EXPERIMENTS[name] = ("service test echo", lambda scale: f"echo@{scale:g}")
    yield name
    del EXPERIMENTS[name]


class TestJobSpec:
    def test_experiment_spec_and_key(self):
        spec = spec_from_payload({"experiment": "table1", "scale": 0.25})
        assert spec.kind == "experiment"
        assert spec.result_key() == "experiment/table1@0.25"

    def test_simulate_key_is_deterministic_and_discriminating(self):
        first = spec_from_payload(dict(SIM_PAYLOAD))
        second = spec_from_payload(dict(SIM_PAYLOAD))
        assert first.result_key() == second.result_key()
        other = spec_from_payload({**SIM_PAYLOAD, "processors": 8})
        assert other.result_key() != first.result_key()

    def test_payload_round_trip(self):
        for payload in ({"experiment": "table1"}, dict(SIM_PAYLOAD)):
            spec = spec_from_payload(payload)
            assert spec_from_payload(spec.to_payload()) == spec

    def test_rejects_unknown_names_and_fields(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            spec_from_payload({"experiment": "fig99"})
        with pytest.raises(ConfigurationError, match="unknown scene"):
            spec_from_payload({"scene": "doom"})
        with pytest.raises(ConfigurationError, match="unknown family"):
            spec_from_payload({"scene": "quake", "family": "spiral"})
        with pytest.raises(ConfigurationError, match="unknown job field"):
            spec_from_payload({"scene": "quake", "colour": "red"})
        with pytest.raises(ConfigurationError, match="'experiment' name or a 'scene'"):
            spec_from_payload({"scale": 0.5})

    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError, match="scale"):
            spec_from_payload({"experiment": "table1", "scale": 2.0})
        with pytest.raises(ConfigurationError, match="processors"):
            spec_from_payload({"scene": "quake", "processors": 0})
        with pytest.raises(ConfigurationError, match="bus_ratio"):
            spec_from_payload({"scene": "quake", "bus_ratio": -1.0})

    def test_options_are_split_from_the_spec(self):
        spec, options = parse_submission(
            {**SIM_PAYLOAD, "priority": -5, "timeout": 2.5, "retries": 1}
        )
        assert options == {"priority": -5, "timeout": 2.5, "retries": 1}
        # Scheduling options must not change the content identity.
        assert spec.result_key() == spec_from_payload(dict(SIM_PAYLOAD)).result_key()
        with pytest.raises(ConfigurationError, match="timeout"):
            parse_submission({**SIM_PAYLOAD, "timeout": 0})


class TestJobQueue:
    def _job(self, priority=0):
        spec = spec_from_payload({"experiment": "table1"})
        return Job(id=f"j{priority}", spec=spec, priority=priority)

    def test_priority_then_fifo_order(self):
        queue = JobQueue()
        first, second, urgent = self._job(0), self._job(0), self._job(-1)
        second.id = "j-second"
        queue.push(first)
        queue.push(second)
        queue.push(urgent)
        assert [queue.pop().id for _ in range(3)] == [urgent.id, first.id, second.id]

    def test_requeue_jumps_the_line(self):
        queue = JobQueue()
        first, crashed = self._job(0), self._job(0)
        crashed.id = "j-crashed"
        queue.push(first)
        queue.push(crashed, front=True)
        assert queue.pop().id == crashed.id

    def test_pop_times_out_empty(self):
        queue = JobQueue()
        assert queue.pop(timeout=0.01) is None
        assert len(queue) == 0


class TestResultStore:
    def test_get_counts_peek_does_not(self, isolated_store):
        store = ResultStore()
        found, _ = store.get("some/key")
        assert not found and store.snapshot()["misses"] == 1
        store.put("some/key", {"text": "hi"})
        assert store.peek("some/key") == (True, {"text": "hi"})
        assert store.snapshot() == {"hits": 0, "misses": 1, "hit_rate": 0.0}
        found, payload = store.get("some/key")
        assert found and payload["text"] == "hi"
        assert store.snapshot()["hits"] == 1

    def test_results_survive_via_the_disk_tier(self, isolated_store, tmp_path):
        ResultStore().put("persist/key", {"text": "durable"})
        # A new in-memory store over the same directory sees the result.
        pipeline.configure(disk_dir=tmp_path / "artifacts")
        assert ResultStore().get("persist/key") == (True, {"text": "durable"})


class TestJobLifecycle:
    def test_queued_running_done(self, isolated_store, make_scheduler, echo_experiment):
        scheduler = make_scheduler(workers=0)
        job, deduped = scheduler.submit({"experiment": echo_experiment, "scale": SCALE})
        assert not deduped and job.state == QUEUED
        scheduler.start()
        done = scheduler.wait(job.id, timeout=30)
        assert done.state == DONE and done.attempts == 1 and done.error is None
        assert done.started_at is not None and done.finished_at is not None
        assert scheduler.result(job.result_key)["text"] == f"echo@{SCALE:g}"
        metrics = scheduler.metrics()
        assert metrics["jobs"][DONE] == 1 and metrics["counters"]["completed"] == 1

    def test_failure_is_terminal_with_the_error(self, isolated_store, make_scheduler):
        name = "svc-test-boom"
        EXPERIMENTS[name] = ("always fails", lambda scale: 1 / 0)
        try:
            scheduler = make_scheduler(workers=0, default_retries=0).start()
            job, _ = scheduler.submit({"experiment": name, "scale": SCALE})
            done = scheduler.wait(job.id, timeout=30)
            assert done.state == FAILED and "division" in done.error
            assert scheduler.metrics()["counters"]["failed"] == 1
            # A failed job releases its key: resubmission runs again.
            retry, deduped = scheduler.submit({"experiment": name, "scale": SCALE})
            assert not deduped and retry.id != job.id
        finally:
            del EXPERIMENTS[name]

    def test_unknown_job_id(self, make_scheduler):
        with pytest.raises(ServiceError, match="unknown job"):
            make_scheduler(workers=0).job("job-404")


class TestRetryBackoff:
    def test_exponential_backoff_schedule(self, isolated_store, make_scheduler):
        """Two failures then success: sleeps follow base * factor**n."""
        attempts = []
        name = "svc-test-flaky"
        def flaky(scale):
            attempts.append(scale)
            if len(attempts) < 3:
                raise RuntimeError(f"flake #{len(attempts)}")
            return "recovered"
        EXPERIMENTS[name] = ("flaky", flaky)
        sleeps = []
        try:
            scheduler = make_scheduler(
                workers=0,
                default_retries=3,
                backoff_base=0.5,
                backoff_factor=2.0,
                sleep=sleeps.append,
            ).start()
            job, _ = scheduler.submit({"experiment": name, "scale": SCALE})
            done = scheduler.wait(job.id, timeout=30)
            assert done.state == DONE and done.attempts == 3
            assert sleeps == [0.5, 1.0]
            assert scheduler.metrics()["counters"]["retries"] == 2
            assert scheduler.result(job.result_key)["text"] == "recovered"
        finally:
            del EXPERIMENTS[name]

    def test_budget_exhaustion_fails_after_all_retries(
        self, isolated_store, make_scheduler
    ):
        name = "svc-test-hopeless"
        EXPERIMENTS[name] = ("hopeless", lambda scale: 1 / 0)
        sleeps = []
        try:
            scheduler = make_scheduler(workers=0, sleep=sleeps.append).start()
            job, _ = scheduler.submit(
                {"experiment": name, "scale": SCALE, "retries": 2}
            )
            done = scheduler.wait(job.id, timeout=30)
            assert done.state == FAILED and done.attempts == 3
            assert len(sleeps) == 2  # one backoff between each attempt pair
        finally:
            del EXPERIMENTS[name]

    def test_backoff_is_capped(self, make_scheduler):
        scheduler = make_scheduler(backoff_base=10.0, backoff_max=15.0)
        job = Job(id="x", spec=spec_from_payload({"experiment": "table1"}), retries=5)
        job.attempts = 4
        sleeps = []
        scheduler._sleep = sleeps.append
        assert scheduler._backoff_or_finish(job, FAILED, "err")
        assert sleeps == [15.0]


class TestCoalescing:
    def test_live_duplicates_share_one_job(
        self, isolated_store, make_scheduler, echo_experiment
    ):
        scheduler = make_scheduler(workers=0)  # not started: jobs stay queued
        payload = {"experiment": echo_experiment, "scale": SCALE}
        first, deduped_first = scheduler.submit(payload)
        second, deduped_second = scheduler.submit(payload)
        assert not deduped_first and deduped_second
        assert second is first
        metrics = scheduler.metrics()
        assert metrics["counters"]["deduped"] == 1
        assert metrics["queue_depth"] == 1

    def test_resubmission_after_completion_hits_the_store(
        self, isolated_store, make_scheduler, echo_experiment
    ):
        scheduler = make_scheduler(workers=0).start()
        payload = {"experiment": echo_experiment, "scale": SCALE}
        first, _ = scheduler.submit(payload)
        scheduler.wait(first.id, timeout=30)
        second, deduped = scheduler.submit(payload)
        assert not deduped and second.id != first.id
        assert second.state == DONE and second.cached and second.attempts == 0
        snapshot = scheduler.metrics()["result_store"]
        assert snapshot["misses"] == 1 and snapshot["hits"] == 1
        assert scheduler.metrics()["counters"]["cache_hits"] == 1

    def test_different_options_same_computation_coalesce(
        self, isolated_store, make_scheduler, echo_experiment
    ):
        scheduler = make_scheduler(workers=0)
        first, _ = scheduler.submit({"experiment": echo_experiment, "priority": 3})
        second, deduped = scheduler.submit({"experiment": echo_experiment, "retries": 9})
        assert deduped and second is first


@pytest.fixture
def http_service(isolated_store, make_scheduler, echo_experiment):
    """A live ephemeral-port server + client around an inline scheduler."""
    scheduler = make_scheduler(workers=0).start()
    server = make_server(scheduler, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield ServiceClient(server.url), scheduler, echo_experiment
    server.shutdown()
    server.server_close()


class TestHTTP:
    def test_round_trip(self, http_service):
        client, _scheduler, experiment = http_service
        assert client.healthz()["status"] == "ok"
        job = client.submit({"experiment": experiment, "scale": SCALE})
        assert job["state"] in (QUEUED, "running", DONE) and not job["deduped"]
        done = client.wait(job["id"], timeout=30)
        assert done["state"] == DONE
        assert client.result(done["result_key"])["text"] == f"echo@{SCALE:g}"
        listing = client.jobs()
        assert any(entry["id"] == job["id"] for entry in listing["jobs"])

    def test_metrics_document_shape(self, http_service):
        client, _scheduler, experiment = http_service
        client.wait(client.submit({"experiment": experiment, "scale": SCALE})["id"], 30)
        metrics = client.metrics()
        assert metrics["queue_depth"] == 0
        assert metrics["jobs"][DONE] == 1
        for counter in ("retries", "timeouts", "pool_restarts", "deduped"):
            assert counter in metrics["counters"]
        assert set(metrics["result_store"]) == {"hits", "misses", "hit_rate"}
        assert "pipeline" in metrics
        # The obs registry snapshot mirrors the service counters and
        # carries the execute-span histogram for the one job that ran.
        snapshot = metrics["obs"]
        assert set(snapshot) == {"counters", "gauges", "histograms"}
        assert snapshot["counters"]["service.submitted"] == 1
        assert snapshot["counters"]["service.completed"] == 1
        assert snapshot["gauges"]["service.queue_depth"] == 0
        assert snapshot["gauges"]["service.jobs{state=done}"] == 1
        assert snapshot["histograms"]["span.service.execute"]["count"] == 1

    def test_error_responses(self, http_service):
        client, _scheduler, _experiment = http_service
        with pytest.raises(ServiceError, match="unknown experiment"):
            client.submit({"experiment": "fig99"})
        with pytest.raises(ServiceError, match="unknown job"):
            client.job("job-404")
        with pytest.raises(ServiceError, match="no result stored"):
            client.result("simulate/never-ran")
        with pytest.raises(ServiceError, match="unknown path"):
            client._request("GET", "/nope")
        with pytest.raises(ServiceError, match="cannot reach service"):
            ServiceClient("http://127.0.0.1:9", timeout=0.5).healthz()

    def test_run_convenience(self, http_service):
        client, _scheduler, experiment = http_service
        payload = client.run({"experiment": experiment, "scale": SCALE}, timeout=30)
        assert payload["text"] == f"echo@{SCALE:g}"


class TestCliServiceVerbs:
    def test_list_includes_utility_commands(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for command in ("serve", "submit", "status", "dump-trace", "batch"):
            assert command in out
        assert "table1" in out and "fig8" in out

    def test_submit_and_status_verbs(self, http_service, capsys):
        client, _scheduler, experiment = http_service
        assert main(["submit", "--url", client.base_url, "--run", experiment,
                     "--scale", str(SCALE), "--wait"]) == 0
        out = capsys.readouterr().out
        assert f"echo@{SCALE:g}" in out
        submitted = json.loads(out[: out.rindex("}") + 1])
        assert main(["status", "--url", client.base_url, "--id", submitted["id"]]) == 0
        assert json.loads(capsys.readouterr().out)["state"] == DONE
        assert main(["status", "--url", client.base_url]) == 0
        assert "result_store" in json.loads(capsys.readouterr().out)

    def test_submit_rejects_bad_job_json(self, capsys):
        assert main(["submit", "--job", "{not json"]) == 2
        assert "--job is not valid JSON" in capsys.readouterr().err

    def test_unreachable_service_is_a_clean_error(self, capsys):
        assert main(["status", "--url", "http://127.0.0.1:9"]) == 2
        assert "cannot reach service" in capsys.readouterr().err


class TestPoolRecovery:
    def test_killed_worker_is_requeued_and_completes(
        self, isolated_store, make_scheduler, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(_MARKER_ENV, str(tmp_path / "crash-marker"))
        scheduler = make_scheduler(workers=1, executor=_kill_once).start()
        job, _ = scheduler.submit({"experiment": "table1", "scale": SCALE})
        done = scheduler.wait(job.id, timeout=60)
        assert done.state == DONE
        assert done.requeues == 1
        assert scheduler.result(job.result_key)["text"] == "survived"
        counters = scheduler.metrics()["counters"]
        assert counters["pool_restarts"] >= 1 and counters["requeues"] == 1

    def test_timeout_marks_the_job_timed_out(
        self, isolated_store, make_scheduler
    ):
        scheduler = make_scheduler(workers=1, executor=_sleep_forever).start()
        job, _ = scheduler.submit(
            {"experiment": "table1", "scale": SCALE, "timeout": 0.5, "retries": 0}
        )
        done = scheduler.wait(job.id, timeout=60)
        assert done.state == TIMED_OUT
        counters = scheduler.metrics()["counters"]
        assert counters["timeouts"] == 1
        # The stuck worker was reclaimed by restarting the pool.
        assert counters["pool_restarts"] >= 1

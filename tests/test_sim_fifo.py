"""Tests for the blocking bounded FIFO."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim import BoundedFifo, Simulator


def test_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        BoundedFifo(sim, 0)


def test_put_then_get_preserves_order():
    sim = Simulator()
    fifo = BoundedFifo(sim, capacity=10)
    received = []

    def producer():
        for item in "abc":
            yield fifo.put(item)

    def consumer():
        for _ in range(3):
            item = yield fifo.get()
            received.append(item)

    processes = [sim.process(producer()), sim.process(consumer())]
    sim.run_all(processes)
    assert received == ["a", "b", "c"]


def test_full_fifo_blocks_producer_until_consumed():
    sim = Simulator()
    fifo = BoundedFifo(sim, capacity=1)
    put_times = []

    def producer():
        for item in range(3):
            yield fifo.put(item)
            put_times.append(sim.now)

    def consumer():
        for _ in range(3):
            yield fifo.get()
            yield sim.timeout(10)

    processes = [sim.process(producer()), sim.process(consumer())]
    sim.run_all(processes)
    # First put is immediate; each later put waits for a get at t=0,10,...
    assert put_times == [0, 0, 10]


def test_get_on_empty_blocks_until_put():
    sim = Simulator()
    fifo = BoundedFifo(sim, capacity=4)
    got = []

    def consumer():
        item = yield fifo.get()
        got.append((sim.now, item))

    def producer():
        yield sim.timeout(42)
        yield fifo.put("late")

    processes = [sim.process(consumer()), sim.process(producer())]
    sim.run_all(processes)
    assert got == [(42, "late")]


def test_multiple_blocked_getters_served_in_arrival_order():
    sim = Simulator()
    fifo = BoundedFifo(sim, capacity=4)
    served = []

    def consumer(cid, arrive):
        yield sim.timeout(arrive)
        item = yield fifo.get()
        served.append((cid, item))

    def producer():
        yield sim.timeout(10)
        for item in range(3):
            yield fifo.put(item)

    processes = [
        sim.process(consumer("c0", 0)),
        sim.process(consumer("c1", 1)),
        sim.process(consumer("c2", 2)),
        sim.process(producer()),
    ]
    sim.run_all(processes)
    assert served == [("c0", 0), ("c1", 1), ("c2", 2)]


def test_high_water_tracks_peak_occupancy():
    sim = Simulator()
    fifo = BoundedFifo(sim, capacity=8)

    def producer():
        for item in range(5):
            yield fifo.put(item)

    def consumer():
        yield sim.timeout(1)
        for _ in range(5):
            yield fifo.get()

    processes = [sim.process(producer()), sim.process(consumer())]
    sim.run_all(processes)
    assert fifo.high_water == 5
    assert len(fifo) == 0


@settings(max_examples=50, deadline=None)
@given(
    items=st.lists(st.integers(), min_size=1, max_size=40),
    capacity=st.integers(min_value=1, max_value=8),
    consumer_delay=st.integers(min_value=0, max_value=5),
)
def test_property_fifo_delivers_everything_in_order(items, capacity, consumer_delay):
    """Whatever the capacity and consumer pacing, order and content hold."""
    sim = Simulator()
    fifo = BoundedFifo(sim, capacity=capacity)
    received = []

    def producer():
        for item in items:
            yield fifo.put(item)

    def consumer():
        for _ in range(len(items)):
            item = yield fifo.get()
            received.append(item)
            if consumer_delay:
                yield sim.timeout(consumer_delay)

    processes = [sim.process(producer()), sim.process(consumer())]
    sim.run_all(processes)
    assert received == items
    assert fifo.high_water <= capacity

"""Tests for the discrete-event kernel."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import Simulator
from repro.sim.kernel import Event


def test_timeout_advances_clock():
    sim = Simulator()
    fired = []

    def process():
        yield sim.timeout(10)
        fired.append(sim.now)
        yield sim.timeout(5)
        fired.append(sim.now)

    sim.process(process())
    sim.run()
    assert fired == [10, 15]


def test_zero_delay_timeout_runs_at_current_time():
    sim = Simulator()
    times = []

    def process():
        yield sim.timeout(0)
        times.append(sim.now)

    sim.process(process())
    sim.run()
    assert times == [0]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_events_fire_in_time_order_with_fifo_ties():
    sim = Simulator()
    order = []

    def make(name, delay):
        def process():
            yield sim.timeout(delay)
            order.append(name)

        return process()

    sim.process(make("b", 5))
    sim.process(make("a", 5))
    sim.process(make("c", 1))
    sim.run()
    # Same-time events fire in scheduling order.
    assert order == ["c", "b", "a"]


def test_event_succeed_delivers_value_to_waiter():
    sim = Simulator()
    event = sim.event()
    got = []

    def waiter():
        value = yield event
        got.append(value)

    def trigger():
        yield sim.timeout(3)
        event.succeed("payload")

    sim.process(waiter())
    sim.process(trigger())
    sim.run()
    assert got == ["payload"]


def test_event_cannot_fire_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed()
    with pytest.raises(SimulationError):
        event.succeed()


def test_callback_after_trigger_runs_immediately():
    sim = Simulator()
    event = sim.event().succeed(42)
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    assert seen == [42]


def test_process_is_waitable_and_returns_value():
    sim = Simulator()
    results = []

    def child():
        yield sim.timeout(7)
        return "done"

    def parent():
        value = yield sim.process(child())
        results.append((sim.now, value))

    sim.process(parent())
    sim.run()
    assert results == [(7, "done")]


def test_process_rejects_non_event_yield():
    sim = Simulator()

    def bad():
        yield 5

    sim.process(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_process_rejects_foreign_event():
    sim_a, sim_b = Simulator(), Simulator()
    foreign = sim_b.timeout(1)

    def confused():
        yield foreign

    sim_a.process(confused())
    with pytest.raises(SimulationError):
        sim_a.run()


def test_run_until_stops_the_clock():
    sim = Simulator()

    def process():
        yield sim.timeout(100)

    sim.process(process())
    assert sim.run(until=40) == 40
    assert sim.now == 40


def test_run_all_detects_starved_process():
    sim = Simulator()
    never = sim.event()

    def stuck():
        yield never

    process = sim.process(stuck(), name="stuck")
    with pytest.raises(DeadlockError, match="stuck"):
        sim.run_all([process])


def test_many_interleaved_processes_keep_consistent_time():
    sim = Simulator()
    trace = []

    def worker(wid, period):
        for _ in range(3):
            yield sim.timeout(period)
            trace.append((sim.now, wid))

    processes = [sim.process(worker(w, w + 1)) for w in range(5)]
    sim.run_all(processes)
    assert trace == sorted(trace, key=lambda item: item[0])
    assert sim.now == max(3 * (w + 1) for w in range(5))


def test_event_factory_binds_simulator():
    sim = Simulator()
    event = sim.event()
    assert isinstance(event, Event)
    assert event.sim is sim
    assert not event.triggered

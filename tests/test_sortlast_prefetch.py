"""Tests for the sort-last baseline and the prefetch pipeline model."""

import numpy as np
import pytest

from repro.core import MachineConfig, simulate_machine
from repro.core.prefetch import (
    PrefetchResult,
    latency_hiding_curve,
    simulate_prefetch_pipeline,
)
from repro.core.sortlast import simulate_sort_last, sort_last_assignment
from repro.distribution import SingleProcessor
from repro.errors import ConfigurationError


class TestSortLastAssignment:
    def test_round_robin(self):
        assignment = sort_last_assignment(6, 3)
        assert assignment.tolist() == [0, 1, 2, 0, 1, 2]

    def test_chunked(self):
        assignment = sort_last_assignment(8, 2, chunk_size=2)
        assert assignment.tolist() == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sort_last_assignment(4, 0)
        with pytest.raises(ConfigurationError):
            sort_last_assignment(4, 2, chunk_size=0)


class TestSortLastMachine:
    def test_single_node_equals_sort_middle_serial(self, flat_scene):
        middle = simulate_machine(
            flat_scene,
            MachineConfig(distribution=SingleProcessor(), cache="lru", bus_ratio=1.0),
        )
        last = simulate_sort_last(flat_scene, 1, cache="lru", bus_ratio=1.0)
        assert last.cycles == pytest.approx(middle.cycles)
        assert last.cache.misses == middle.cache.misses

    def test_work_conserved_across_nodes(self, tiny_bench_scene):
        result = simulate_sort_last(tiny_bench_scene, 8, cache="perfect")
        fragments = tiny_bench_scene.fragments()
        assert result.node_pixels.sum() == len(fragments)
        # Triangle distribution: no bounding-box duplication, so total
        # work equals the serial machine's.
        counts = fragments.triangle_pixel_counts()
        assert result.node_work.sum() == np.maximum(counts, 25).sum()

    def test_speedup_within_bounds(self, tiny_bench_scene):
        serial = simulate_sort_last(tiny_bench_scene, 1, cache="perfect")
        parallel = simulate_sort_last(
            tiny_bench_scene, 8, cache="perfect", baseline_cycles=serial.cycles
        )
        assert 1.0 <= parallel.speedup <= 8.0 + 1e-9

    def test_object_chunks_keep_texture_locality(self, tiny_bench_scene):
        """Dealing whole objects preserves more locality than dealing
        individual triangles of the same object to different nodes."""
        per_triangle = simulate_sort_last(tiny_bench_scene, 8, chunk_size=1)
        per_object = simulate_sort_last(tiny_bench_scene, 8, chunk_size=18)
        assert per_object.cache.misses <= per_triangle.cache.misses

    def test_result_metadata(self, flat_scene):
        result = simulate_sort_last(flat_scene, 4, chunk_size=2)
        assert result.distribution == "sortlast-c2x4"
        assert result.extras["chunk_size"] == 2
        assert result.num_processors == 4


class TestPrefetchPipeline:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            simulate_prefetch_pipeline(np.zeros(1), 0, 10, 1.0)
        with pytest.raises(ConfigurationError):
            simulate_prefetch_pipeline(np.zeros(1), 4, -1, 1.0)
        with pytest.raises(ConfigurationError):
            simulate_prefetch_pipeline(np.zeros(1), 4, 10, 0)

    def test_no_misses_is_one_fragment_per_cycle(self):
        result = simulate_prefetch_pipeline(np.zeros(100, dtype=int), 8, 50, 1.0)
        assert result.cycles == pytest.approx(100.0)
        assert result.slowdown == pytest.approx(1.0)

    def test_empty_stream(self):
        result = simulate_prefetch_pipeline(np.zeros(0, dtype=int), 8, 50, 1.0)
        assert result.cycles == 0.0
        assert result.slowdown == 1.0

    def test_shallow_fifo_exposes_latency(self):
        misses = np.ones(200, dtype=int)
        shallow = simulate_prefetch_pipeline(misses, 1, 100, bus_ratio=1e9)
        # Every fragment waits the full latency serially-ish.
        assert shallow.cycles > 100 * 100

    def test_deep_fifo_hides_latency(self):
        rng = np.random.default_rng(1)
        misses = (rng.random(5000) < 0.1).astype(int)
        deep = simulate_prefetch_pipeline(misses, 1024, 50, bus_ratio=2.0)
        assert deep.slowdown < 1.05

    def test_monotone_in_depth(self):
        rng = np.random.default_rng(2)
        misses = (rng.random(3000) < 0.2).astype(int)
        curve = latency_hiding_curve(misses, [1, 4, 16, 64, 256], 50, 2.0)
        values = list(curve.values())
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))
        assert values[0] > 1.5
        assert values[-1] < 1.1

    def test_bandwidth_floor_respected(self):
        """Even an infinite FIFO cannot beat the bus."""
        misses = np.ones(1000, dtype=int)
        result = simulate_prefetch_pipeline(misses, 10**6, 0, bus_ratio=1.0)
        assert result.cycles >= 16 * 1000

    def test_result_dataclass(self):
        result = PrefetchResult(cycles=120.0, zero_latency_cycles=100.0, fragments=100)
        assert result.slowdown == pytest.approx(1.2)
        assert PrefetchResult(0.0, 0.0, 0).slowdown == 1.0

"""Tests for textures, the memory layout and the trilinear filter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.texture import (
    MipmappedTexture,
    TextureMemoryLayout,
    TrilinearFilter,
    TEXELS_PER_FRAGMENT,
)
from repro.texture.layout import LINE_BYTES, TEXELS_PER_LINE


class TestMipmappedTexture:
    def test_pyramid_goes_down_to_1x1(self):
        texture = MipmappedTexture(64, 16)
        dims = [(lvl.width, lvl.height) for lvl in texture.levels]
        assert dims == [(64, 16), (32, 8), (16, 4), (8, 2), (4, 1), (2, 1), (1, 1)]

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            MipmappedTexture(48, 64)
        with pytest.raises(ConfigurationError):
            MipmappedTexture(64, 0)

    def test_total_bytes_includes_pyramid(self):
        texture = MipmappedTexture(4, 4)
        # 16 + 4 + 1 texels, 4 bytes each.
        assert texture.total_texels() == 21
        assert texture.total_bytes() == 84

    def test_level_clamps_to_tail(self):
        texture = MipmappedTexture(8, 8)
        assert texture.level(100).width == 1

    def test_magnified_doubles_dimensions(self):
        texture = MipmappedTexture(8, 8).magnified(4)
        assert (texture.width, texture.height) == (32, 32)
        with pytest.raises(ConfigurationError):
            MipmappedTexture(8, 8).magnified(3)


class TestTextureMemoryLayout:
    def test_needs_textures(self):
        with pytest.raises(ConfigurationError):
            TextureMemoryLayout([])

    def test_line_regions_are_disjoint_across_textures_and_levels(self):
        textures = [MipmappedTexture(16, 16), MipmappedTexture(8, 8)]
        layout = TextureMemoryLayout(textures)
        spans = []
        for t_index, texture in enumerate(textures):
            for l_index, level in enumerate(texture.levels):
                slot = t_index * layout.max_levels + l_index
                blocks = (-(-level.width // 4)) * (-(-level.height // 4))
                spans.append((int(layout.line_base[slot]), blocks))
        spans.sort()
        for (base_a, size_a), (base_b, _) in zip(spans, spans[1:]):
            assert base_a + size_a <= base_b
        assert layout.total_lines == sum(size for _, size in spans)

    def test_total_bytes_accounts_every_line(self):
        layout = TextureMemoryLayout([MipmappedTexture(16, 16)])
        assert layout.total_bytes() == layout.total_lines * LINE_BYTES

    def test_line_address_block_arithmetic(self):
        layout = TextureMemoryLayout([MipmappedTexture(16, 16)])
        tex = np.zeros(3, dtype=np.int64)
        lvl = np.zeros(3, dtype=np.int64)
        i = np.array([0, 4, 15])
        j = np.array([0, 0, 15])
        lines = layout.line_address(tex, lvl, i, j)
        # Level 0 of a 16x16 texture is a 4x4 grid of blocks.
        assert lines.tolist() == [0, 1, 3 * 4 + 3]

    def test_adjacent_texels_in_block_share_a_line(self):
        layout = TextureMemoryLayout([MipmappedTexture(16, 16)])
        tex = np.zeros(2, dtype=np.int64)
        lvl = np.zeros(2, dtype=np.int64)
        same = layout.line_address(tex, lvl, np.array([0, 3]), np.array([0, 3]))
        assert same[0] == same[1]
        cross = layout.line_address(tex, lvl, np.array([3, 4]), np.array([0, 0]))
        assert cross[0] != cross[1]

    def test_texel_addresses_unique_within_level(self):
        layout = TextureMemoryLayout([MipmappedTexture(8, 8)])
        tex = np.zeros(64, dtype=np.int64)
        lvl = np.zeros(64, dtype=np.int64)
        i, j = np.meshgrid(np.arange(8), np.arange(8))
        addresses = layout.texel_address(tex, lvl, i.ravel(), j.ravel())
        assert len(np.unique(addresses)) == 64

    @settings(max_examples=40, deadline=None)
    @given(
        edges=st.lists(
            st.sampled_from([4, 8, 16, 32]), min_size=1, max_size=5
        ),
        level=st.integers(min_value=0, max_value=5),
    )
    def test_property_line_addresses_stay_in_bounds(self, edges, level):
        textures = [MipmappedTexture(e, e) for e in edges]
        layout = TextureMemoryLayout(textures)
        for t_index, texture in enumerate(textures):
            lvl = np.full(4, level, dtype=np.int64)
            tex = np.full(4, t_index, dtype=np.int64)
            dims = texture.level(min(level, texture.num_levels - 1))
            i = np.array([0, dims.width - 1, 0, dims.width - 1])
            j = np.array([0, 0, dims.height - 1, dims.height - 1])
            lines = layout.line_address(tex, lvl, i, j)
            assert (lines >= 0).all()
            assert (lines < layout.total_lines).all()


class TestTrilinearFilter:
    def make(self, *textures):
        layout = TextureMemoryLayout(list(textures))
        return layout, TrilinearFilter(layout)

    def test_eight_addresses_per_fragment(self):
        _, filt = self.make(MipmappedTexture(16, 16))
        lines = filt.line_addresses(
            np.array([8.0]), np.array([8.0]), np.array([0]), np.array([0])
        )
        assert lines.shape == (1, TEXELS_PER_FRAGMENT)

    def test_interior_sample_covers_two_levels(self):
        layout, filt = self.make(MipmappedTexture(16, 16))
        texels = filt.texel_addresses(
            np.array([8.0]), np.array([8.0]), np.array([0]), np.array([0])
        )[0]
        level0 = texels[:4]
        level1 = texels[4:]
        # Level-1 addresses live in the level-1 region of the layout.
        assert (level0 < layout.texel_base[1]).all()
        assert (level1 >= layout.texel_base[1]).all()

    def test_bilinear_corners_wrap(self):
        _, filt = self.make(MipmappedTexture(8, 8))
        # Sampling at u=0.1 reaches the texel at the far edge via wrap.
        texels = filt.texel_addresses(
            np.array([0.1]), np.array([4.0]), np.array([0]), np.array([0])
        )[0][:4]
        columns = sorted(int(t) % 8 for t in texels)
        assert 7 in columns and 0 in columns

    def test_level_is_clamped_to_pyramid(self):
        _, filt = self.make(MipmappedTexture(4, 4))
        lines = filt.line_addresses(
            np.array([1.0]), np.array([1.0]), np.array([10]), np.array([0])
        )
        assert lines.shape == (1, 8)
        # Both halves sample the clamped 1x1 tail level: a single line.
        assert len(np.unique(lines)) == 1

    def test_sample_centre_of_texel_grid_touches_four_texels(self):
        _, filt = self.make(MipmappedTexture(16, 16))
        texels = filt.texel_addresses(
            np.array([8.0]), np.array([8.0]), np.array([0]), np.array([0])
        )[0][:4]
        assert len(np.unique(texels)) == 4

    def test_distinct_textures_never_share_addresses(self):
        _, filt = self.make(MipmappedTexture(8, 8), MipmappedTexture(8, 8))
        u = np.array([4.0, 4.0])
        v = np.array([4.0, 4.0])
        lvl = np.array([0, 0])
        tex = np.array([0, 1])
        lines = filt.line_addresses(u, v, lvl, tex)
        assert set(lines[0]).isdisjoint(set(lines[1]))

    def test_texels_per_line_constant_is_consistent(self):
        assert TEXELS_PER_LINE * 4 == LINE_BYTES

"""Tests for the triangle-trace file format."""

import pytest

from repro.errors import TraceFormatError
from repro.geometry import Scene, Triangle, Vertex, load_trace, save_trace
from repro.texture.texture import MipmappedTexture


def sample_scene() -> Scene:
    scene = Scene(
        "demo", 320, 200, [MipmappedTexture(64, 64), MipmappedTexture(16, 16)]
    )
    scene.add(
        Triangle(
            Vertex(0.5, 1.25, 3.0, 4.0),
            Vertex(10, 1, 13, 4),
            Vertex(0, 11, 3, 14),
            texture=1,
        )
    )
    scene.add(
        Triangle(Vertex(50, 50), Vertex(60, 50), Vertex(50, 60), texture=0)
    )
    return scene


def test_roundtrip_preserves_everything(tmp_path):
    path = tmp_path / "demo.trace"
    original = sample_scene()
    save_trace(original, path)
    loaded = load_trace(path)

    assert loaded.name == original.name
    assert (loaded.width, loaded.height) == (original.width, original.height)
    assert len(loaded.textures) == len(original.textures)
    for mine, theirs in zip(loaded.textures, original.textures):
        assert (mine.width, mine.height) == (theirs.width, theirs.height)
    assert loaded.num_triangles == original.num_triangles
    for mine, theirs in zip(loaded.triangles, original.triangles):
        assert mine.texture == theirs.texture
        for vm, vt in zip(mine.vertices, theirs.vertices):
            assert vm.x == pytest.approx(vt.x, abs=1e-4)
            assert vm.u == pytest.approx(vt.u, abs=1e-4)


def test_roundtrip_of_generated_scene_matches_rasterization(tmp_path, tiny_bench_scene):
    path = tmp_path / "bench.trace"
    save_trace(tiny_bench_scene, path)
    loaded = load_trace(path)
    # The trace stores coordinates at 1e-4 precision; fragment counts of
    # the replayed trace must match the live scene almost exactly.
    original = len(tiny_bench_scene.fragments())
    replayed = len(loaded.fragments())
    assert abs(replayed - original) <= max(2, original * 0.001)


def test_rejects_non_trace_file(tmp_path):
    path = tmp_path / "junk.trace"
    path.write_text("hello world\n")
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_rejects_wrong_version(tmp_path):
    path = tmp_path / "future.trace"
    path.write_text("REPRO-TRACE 999\nscene x\n")
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_rejects_truncated_file(tmp_path):
    path = tmp_path / "cut.trace"
    full = tmp_path / "full.trace"
    save_trace(sample_scene(), full)
    lines = full.read_text().splitlines()
    path.write_text("\n".join(lines[:-1]) + "\n")
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_rejects_malformed_record(tmp_path):
    path = tmp_path / "bad.trace"
    text = (
        "REPRO-TRACE 1\nscene s\nscreen 10 10\ntextures 1\n"
        "texture 8 8\ntriangles 1\ntri 0 1 2 3\n"
    )
    path.write_text(text)
    with pytest.raises(TraceFormatError):
        load_trace(path)


def test_trace_round_trips_depth(tmp_path):
    from repro.geometry import Triangle, Vertex

    scene = Scene("depths", 32, 32, [MipmappedTexture(8, 8)])
    scene.add(
        Triangle(
            Vertex(0, 0, z=1.5), Vertex(10, 0, z=2.5), Vertex(0, 10, z=3.5)
        )
    )
    path = tmp_path / "z.trace"
    save_trace(scene, path)
    loaded = load_trace(path)
    zs = [v.z for v in loaded.triangles[0].vertices]
    assert zs == pytest.approx([1.5, 2.5, 3.5], abs=1e-4)


def test_version_one_traces_still_load(tmp_path):
    text = (
        "REPRO-TRACE 1\n"
        "scene old\n"
        "screen 10 10\n"
        "textures 1\n"
        "texture 8 8\n"
        "triangles 1\n"
        "tri 0 0 0 1 2 5 0 3 4 0 5 5 6\n"
    )
    path = tmp_path / "old.trace"
    path.write_text(text)
    scene = load_trace(path)
    assert scene.name == "old"
    assert scene.num_triangles == 1
    first = scene.triangles[0].v0
    assert (first.x, first.y, first.u, first.v, first.z) == (0, 0, 1, 2, 0.0)

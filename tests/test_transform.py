"""Tests for the 3D geometry-processing stage."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.geometry.transform import (
    Camera,
    Triangle3D,
    Vertex3D,
    look_at,
    perspective,
    project_triangle,
    project_triangles,
    textured_quad_3d,
)

CAMERA = Camera(
    eye=(0, 0, 10),
    target=(0, 0, 0),
    fov_y_degrees=90.0,
    viewport_width=200,
    viewport_height=100,
)


class TestMatrices:
    def test_look_at_maps_target_onto_minus_z(self):
        view = look_at((0, 0, 10), (0, 0, 0))
        eye_space = view @ np.array([0, 0, 0, 1])
        assert eye_space[:3] == pytest.approx([0, 0, -10])

    def test_look_at_preserves_distances(self):
        view = look_at((3, 4, 5), (0, 1, 0), up=(0, 1, 0))
        a = view @ np.array([1, 2, 3, 1.0])
        b = view @ np.array([-1, 0, 2, 1.0])
        original = np.linalg.norm(np.array([1, 2, 3]) - np.array([-1, 0, 2]))
        assert np.linalg.norm(a[:3] - b[:3]) == pytest.approx(original)

    def test_look_at_rejects_degenerate_setups(self):
        with pytest.raises(ConfigurationError):
            look_at((0, 0, 0), (0, 0, 0))
        with pytest.raises(ConfigurationError):
            look_at((0, 0, 10), (0, 0, 0), up=(0, 0, 1))

    def test_perspective_near_far_mapping(self):
        projection = perspective(90, 1.0, 1.0, 100.0)
        near_point = projection @ np.array([0, 0, -1, 1.0])
        far_point = projection @ np.array([0, 0, -100, 1.0])
        assert near_point[2] / near_point[3] == pytest.approx(-1.0)
        assert far_point[2] / far_point[3] == pytest.approx(1.0)

    def test_perspective_validation(self):
        with pytest.raises(ConfigurationError):
            perspective(0, 1, 0.1, 10)
        with pytest.raises(ConfigurationError):
            perspective(60, 1, 5, 1)


class TestProjection:
    def test_centre_of_view_lands_at_screen_centre(self):
        tri = Triangle3D(
            Vertex3D(-1, -1, 0), Vertex3D(1, -1, 0), Vertex3D(0, 1, 0)
        )
        screen = project_triangle(tri, CAMERA, cull_backfaces=False)
        assert screen
        xs = [v.x for t in screen for v in t.vertices]
        ys = [v.y for t in screen for v in t.vertices]
        assert min(xs) > 80 and max(xs) < 120
        assert min(ys) > 35 and max(ys) < 65

    def test_known_point_position(self):
        # fov 90, eye at z=10: the plane z=0 spans y in [-10, 10].
        tri = Triangle3D(
            Vertex3D(0, 10, 0), Vertex3D(-1, 9, 0), Vertex3D(1, 9, 0)
        )
        screen = project_triangle(tri, CAMERA, cull_backfaces=False)
        tip = screen[0].v0
        assert tip.y == pytest.approx(0.0, abs=1e-9)   # top of screen
        assert tip.x == pytest.approx(100.0, abs=1e-9)  # horizontal centre

    def test_nearer_objects_project_larger(self):
        def width_at(z):
            tri = Triangle3D(
                Vertex3D(-1, 0, z), Vertex3D(1, 0, z), Vertex3D(0, 1, z)
            )
            screen = project_triangle(tri, CAMERA, cull_backfaces=False)
            xs = [v.x for t in screen for v in t.vertices]
            return max(xs) - min(xs)

        assert width_at(5) > width_at(0) > width_at(-20)

    def test_triangle_behind_camera_is_culled(self):
        tri = Triangle3D(
            Vertex3D(-1, 0, 20), Vertex3D(1, 0, 20), Vertex3D(0, 1, 20)
        )
        assert project_triangle(tri, CAMERA, cull_backfaces=False) == []

    def test_near_plane_clip_splits_crossing_triangle(self):
        # One vertex behind the camera, two in front.
        tri = Triangle3D(
            Vertex3D(0, 0, 15), Vertex3D(-2, 0, 0), Vertex3D(2, 0.5, 0)
        )
        screen = project_triangle(tri, CAMERA, cull_backfaces=False)
        assert 1 <= len(screen) <= 2
        for t in screen:
            for v in t.vertices:
                assert math.isfinite(v.x) and math.isfinite(v.y)

    def test_backface_culling(self):
        front = Triangle3D(
            Vertex3D(-1, -1, 0), Vertex3D(1, -1, 0), Vertex3D(0, 1, 0)
        )
        back = Triangle3D(front.v1, front.v0, front.v2, texture=0)
        front_screen = project_triangle(front, CAMERA, cull_backfaces=True)
        back_screen = project_triangle(back, CAMERA, cull_backfaces=True)
        # Exactly one of the two windings survives culling.
        assert bool(front_screen) != bool(back_screen)

    def test_texture_coordinates_carried_through(self):
        tri = Triangle3D(
            Vertex3D(-1, -1, 0, u=3, v=4),
            Vertex3D(1, -1, 0, u=5, v=4),
            Vertex3D(0, 1, 0, u=4, v=6),
            texture=2,
        )
        screen = project_triangle(tri, CAMERA, cull_backfaces=False)
        assert screen[0].texture == 2
        assert {round(v.u, 6) for v in screen[0].vertices} == {3, 5, 4}

    def test_project_triangles_preserves_order(self):
        tris = [
            Triangle3D(
                Vertex3D(-1, -1, z), Vertex3D(1, -1, z), Vertex3D(0, 1, z),
                texture=i,
            )
            for i, z in enumerate((0, 1, 2))
        ]
        screen = project_triangles(tris, CAMERA, cull_backfaces=False)
        assert [t.texture for t in screen] == [0, 1, 2]


class TestTexturedQuad3D:
    def test_quad_spans_texture_by_scale(self):
        quads = textured_quad_3d(
            corner=(0, 0, 0), edge_u=(4, 0, 0), edge_v=(0, 3, 0), texel_scale=2.0
        )
        assert len(quads) == 2
        us = [v.u for t in quads for v in t.vertices]
        vs = [v.v for t in quads for v in t.vertices]
        assert max(us) - min(us) == pytest.approx(8.0)   # 4 units * 2 texels
        assert max(vs) - min(vs) == pytest.approx(6.0)

    def test_quad_end_to_end_through_pipeline(self):
        """World quad -> projection -> rasterizer -> fragments."""
        from repro.geometry.scene import Scene
        from repro.texture.texture import MipmappedTexture

        quads = textured_quad_3d(
            corner=(-4, -4, 0), edge_u=(8, 0, 0), edge_v=(0, 8, 0)
        )
        screen = project_triangles(quads, CAMERA, cull_backfaces=False)
        scene = Scene("pipeline", 200, 100, [MipmappedTexture(64, 64)], screen)
        fragments = scene.fragments()
        assert len(fragments) > 100


class TestDepthOutput:
    def test_projected_depth_orders_by_distance(self):
        near = Triangle3D(
            Vertex3D(-1, 0, 5), Vertex3D(1, 0, 5), Vertex3D(0, 1, 5)
        )
        far = Triangle3D(
            Vertex3D(-1, 0, -20), Vertex3D(1, 0, -20), Vertex3D(0, 1, -20)
        )
        z_near = project_triangle(near, CAMERA, cull_backfaces=False)[0].v0.z
        z_far = project_triangle(far, CAMERA, cull_backfaces=False)[0].v0.z
        assert 0.0 <= z_near < z_far <= 1.0

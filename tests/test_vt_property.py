"""Property tests for the virtual-texturing page table.

Three walls, mirroring the guarantees ``repro.texture.pages`` claims:

* **Exactness identity** — a fully-resident, identity-mapped table is
  a bit-exact no-op: same translated addresses, same cycles, same hit
  rates as the direct (non-VT) path, through the whole machine.
* **Split invariance** — ``translate`` is pure, so chunking and call
  splits cannot change its output; ``observe`` accumulates first-touch
  ranks in global stream order, so feeding the stream in any slicing
  yields the same residency trajectory.
* **Deterministic paging** — the LRU update is a pure array function
  of the access stream: two tables fed the same stream stay identical,
  and a tiny hand-built stream reproduces the expected eviction by
  hand.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.batch import distribution_from_spec, machine_config_from_spec
from repro.core.machine import simulate_machine
from repro.core.routing import build_routed_work
from repro.errors import ConfigurationError
from repro.texture.pages import PageTable, VirtualTextureConfig
from repro.workloads.vt import require_vt_spec, vt_frames


@pytest.fixture(scope="module")
def frames():
    return vt_frames(require_vt_spec("vt-quake"), scale=0.0625)


@pytest.fixture(scope="module")
def layout(frames):
    return frames[0].memory_layout()


def _routed(scene, layout, config, distribution, translator=None):
    return build_routed_work(
        scene,
        distribution,
        cache_spec=config.cache,
        cache_config=config.cache_config,
        setup_cycles=config.setup_cycles,
        layout=layout,
        translator=translator,
    )


def _random_lines(rng, total_lines, length):
    return rng.integers(0, total_lines, size=length).astype(np.int64)


# -- configuration validation ----------------------------------------


def test_page_lines_must_be_power_of_two():
    with pytest.raises(ConfigurationError):
        VirtualTextureConfig(page_lines=12)
    with pytest.raises(ConfigurationError):
        VirtualTextureConfig(page_lines=0)


def test_residency_fraction_bounds():
    with pytest.raises(ConfigurationError):
        VirtualTextureConfig(residency_fraction=0.0)
    with pytest.raises(ConfigurationError):
        VirtualTextureConfig(residency_fraction=1.5)


# -- exactness identity ----------------------------------------------


def test_fully_resident_table_is_identity(layout):
    table = PageTable(layout.total_lines, VirtualTextureConfig(16, 1.0))
    assert table.identity
    assert table.num_frames == table.num_pages
    lines = np.arange(min(layout.total_lines, 4096), dtype=np.int64)
    assert table.translate(lines) is lines  # the very same array


def test_identity_survives_frames(layout):
    """No page can fault or evict when every page is resident."""
    rng = np.random.default_rng(710)
    table = PageTable(layout.total_lines, VirtualTextureConfig(16, 1.0))
    for _ in range(3):
        table.observe(_random_lines(rng, layout.total_lines, 3000))
        stats = table.advance_frame()
        assert stats["fault_accesses"] == 0
        assert stats["paged_in"] == 0
        assert stats["evicted"] == 0
    assert table.identity
    lines = _random_lines(rng, layout.total_lines, 100)
    assert table.translate(lines) is lines


@pytest.mark.parametrize("family,size", [("block", 16), ("sli", 2)])
def test_identity_vt_machine_run_matches_direct_path(frames, layout, family, size):
    """The whole machine: identity VT vs no VT must be bit-identical."""
    scene = frames[0]
    spec = {"family": family, "processors": 4, "size": size}
    distribution = distribution_from_spec(spec, scene.height)
    config = machine_config_from_spec(spec, distribution)
    table = PageTable(layout.total_lines, VirtualTextureConfig(16, 1.0))

    direct = simulate_machine(
        scene, config, routed=_routed(scene, layout, config, distribution)
    )
    via_vt = simulate_machine(
        scene,
        config,
        routed=_routed(scene, layout, config, distribution, translator=table),
    )
    assert via_vt.cycles == direct.cycles
    assert via_vt.cache.miss_rate == direct.cache.miss_rate
    assert via_vt.cache.misses == direct.cache.misses
    assert via_vt.cache.compulsory_misses == direct.cache.compulsory_misses
    assert via_vt.cache.line_accesses == direct.cache.line_accesses
    assert via_vt.cache.texels_fetched == direct.cache.texels_fetched
    assert via_vt.texel_to_fragment == direct.texel_to_fragment
    assert np.array_equal(
        via_vt.cache.texels_by_triangle, direct.cache.texels_by_triangle
    )


# -- translation: purity and split invariance ------------------------


def test_translate_is_pure(layout):
    rng = np.random.default_rng(711)
    table = PageTable(layout.total_lines, VirtualTextureConfig(8, 0.5))
    before = table.mapping()
    key_before = table.cache_key()
    table.translate(_random_lines(rng, layout.total_lines, 5000))
    assert np.array_equal(table.mapping(), before)
    assert table.cache_key() == key_before


def test_translate_is_call_split_invariant(layout):
    rng = np.random.default_rng(712)
    table = PageTable(layout.total_lines, VirtualTextureConfig(8, 0.5))
    lines = _random_lines(rng, layout.total_lines, 20000)
    whole = table.translate(lines)
    for _ in range(4):
        cuts = np.sort(rng.integers(0, len(lines) + 1, size=rng.integers(1, 9)))
        edges = np.concatenate(([0], cuts, [len(lines)]))
        pieces = [
            table.translate(lines[a:b]) for a, b in zip(edges, edges[1:]) if b > a
        ]
        assert np.array_equal(np.concatenate(pieces), whole)


def test_translate_bounds_and_offsets(layout):
    """Translated addresses stay inside the physical space; resident
    pages keep their offsets; faults land in the fallback frame."""
    rng = np.random.default_rng(713)
    config = VirtualTextureConfig(16, 0.25)
    table = PageTable(layout.total_lines, config)
    lines = _random_lines(rng, layout.total_lines, 10000)
    out = table.translate(lines)
    assert out.min() >= 0
    assert out.max() < table.address_space_lines
    assert np.array_equal(out % config.page_lines, lines % config.page_lines)

    resident = table.resident_mask()[lines // config.page_lines]
    fallback_lines = out[~resident] // config.page_lines
    assert resident.any() and (~resident).any()
    assert np.all(fallback_lines == table.fallback_frame)


# -- observation: split invariance and determinism -------------------


def test_observe_is_split_invariant(layout):
    """Any slicing of the frame stream yields the same trajectory."""
    rng = np.random.default_rng(714)
    lines = _random_lines(rng, layout.total_lines, 30000)
    whole = PageTable(layout.total_lines, VirtualTextureConfig(8, 0.5))
    whole.observe(lines)
    whole_stats = whole.advance_frame()

    for seed in (1, 2, 3):
        split_rng = np.random.default_rng(714 + seed)
        split = PageTable(layout.total_lines, VirtualTextureConfig(8, 0.5))
        cuts = np.sort(split_rng.integers(0, len(lines) + 1, size=7))
        edges = np.concatenate(([0], cuts, [len(lines)]))
        for a, b in zip(edges, edges[1:]):
            if b > a:
                split.observe(lines[a:b])
        assert split.advance_frame() == whole_stats
        assert np.array_equal(split.mapping(), whole.mapping())
        assert split.cache_key() == whole.cache_key()


def test_residency_trajectory_is_deterministic(layout):
    """Same stream, same table: bit-identical history and mapping."""
    rng = np.random.default_rng(715)
    streams = [_random_lines(rng, layout.total_lines, 8000) for _ in range(3)]
    tables = [
        PageTable(layout.total_lines, VirtualTextureConfig(16, 0.5))
        for _ in range(2)
    ]
    for stream in streams:
        for table in tables:
            table.observe(stream)
            table.advance_frame()
    assert tables[0].history == tables[1].history
    assert np.array_equal(tables[0].mapping(), tables[1].mapping())
    assert tables[0].cache_key() == tables[1].cache_key()


def test_fault_pages_in_next_frame():
    """A faulted page is resident for the following frame."""
    # 8 pages of 4 lines, half resident: pages 0-3 hold frames 0-3.
    table = PageTable(32, VirtualTextureConfig(4, 0.5))
    target = np.array([6 * 4 + 1], dtype=np.int64)  # one line of page 6
    assert not table.resident_mask()[6]
    assert table.translate(target)[0] == table.fallback_frame * 4 + 1

    table.observe(target)
    stats = table.advance_frame()
    assert stats["fault_accesses"] == 1
    assert stats["faulted_pages"] == 1
    assert stats["paged_in"] == 1
    assert stats["evicted"] == 1
    assert table.resident_mask()[6]
    assert table.translate(target)[0] != table.fallback_frame * 4 + 1


def test_hand_checked_lru_eviction():
    """4 pages of 1 line, 2 resident; touch 2, 3, 0 in that order.

    Recency after the frame: page0 newest, then 3, then 2; page1 was
    never touched, so page1 (LRU) and the less-recent toucher page2
    are evicted, keeping {0, 3}.  Page 3 inherits page 1's frame.
    """
    table = PageTable(4, VirtualTextureConfig(1, 0.5))
    assert np.array_equal(table.mapping(), [0, 1, -1, -1])

    table.observe(np.array([2], dtype=np.int64))
    table.observe(np.array([3, 0], dtype=np.int64))
    stats = table.advance_frame()

    assert stats["touched_pages"] == 3
    assert stats["fault_accesses"] == 2
    assert stats["paged_in"] == 1  # only one free frame for {2, 3}
    assert stats["evicted"] == 1
    assert np.array_equal(table.mapping(), [0, -1, -1, 1])


def test_resident_count_is_invariant(layout):
    """|resident| stays exactly num_frames across any trajectory."""
    rng = np.random.default_rng(716)
    table = PageTable(layout.total_lines, VirtualTextureConfig(8, 0.25))
    for _ in range(4):
        table.observe(_random_lines(rng, layout.total_lines, 5000))
        stats = table.advance_frame()
        assert stats["resident_pages"] == table.num_frames
        assert int(table.resident_mask().sum()) == table.num_frames
        mapped = table.mapping()
        frames = mapped[mapped >= 0]
        # Frames are a permutation of 0..num_frames-1: no frame leaks.
        assert np.array_equal(np.sort(frames), np.arange(table.num_frames))


def test_cache_key_changes_with_mapping(layout):
    table = PageTable(layout.total_lines, VirtualTextureConfig(8, 0.25))
    key_cold = table.cache_key()
    # Touch only non-resident pages so the mapping must change.
    non_resident = np.flatnonzero(~table.resident_mask())[:10]
    lines = (non_resident * 8).astype(np.int64)
    table.observe(lines)
    table.advance_frame()
    assert table.cache_key() != key_cold
    assert table.cache_key() == table.cache_key()  # stable between frames

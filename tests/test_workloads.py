"""Tests for the synthetic workload generator and the named scenes."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads import (
    SCENE_NAMES,
    SCENE_SPECS,
    ClusterSpec,
    SceneSpec,
    build_scene,
    generate_scene,
    remove_magnification,
)
from repro.workloads.generator import _visible_area
from repro.workloads.scenes import experiment_scale


def small_spec(**overrides) -> SceneSpec:
    base = dict(
        name="test",
        screen_width=256,
        screen_height=256,
        depth_complexity=2.0,
        pixels_per_triangle=100.0,
        num_textures=4,
        texture_edges=((32, 1.0),),
        texel_scale=1.0,
        seed=5,
    )
    base.update(overrides)
    return SceneSpec(**base)


class TestSpecValidation:
    def test_rejects_bad_depth(self):
        with pytest.raises(ConfigurationError):
            small_spec(depth_complexity=0)

    def test_rejects_bad_texel_scale(self):
        with pytest.raises(ConfigurationError):
            small_spec(texel_scale=-1)

    def test_rejects_empty_texture_mix(self):
        with pytest.raises(ConfigurationError):
            small_spec(texture_edges=())

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            small_spec(texture_window=0)

    def test_cluster_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(count=-1)
        with pytest.raises(ConfigurationError):
            ClusterSpec(weight=1.5)
        with pytest.raises(ConfigurationError):
            ClusterSpec(sigma_fraction=0)


class TestScaling:
    def test_scale_one_is_identity(self):
        spec = small_spec()
        assert spec.scaled(1.0) is spec

    def test_scale_shrinks_screen_linearly(self):
        spec = small_spec().scaled(0.5)
        assert spec.screen_width == 128
        assert spec.screen_height == 128

    def test_scale_keeps_per_pixel_quantities(self):
        spec = small_spec().scaled(0.25)
        assert spec.pixels_per_triangle == 100.0
        assert spec.texel_scale == 1.0
        assert spec.texture_edges == ((32, 1.0),)

    def test_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            small_spec().scaled(0)
        with pytest.raises(ConfigurationError):
            small_spec().scaled(1.5)


class TestGeneration:
    def test_deterministic(self):
        a = generate_scene(small_spec())
        b = generate_scene(small_spec())
        assert a.num_triangles == b.num_triangles
        va = a.triangles[0].v0
        vb = b.triangles[0].v0
        assert (va.x, va.y, va.u, va.v) == (vb.x, vb.y, vb.u, vb.v)

    def test_seed_changes_scene(self):
        a = generate_scene(small_spec(seed=1))
        b = generate_scene(small_spec(seed=2))
        assert (a.triangles[0].v0.x, a.triangles[0].v0.y) != (
            b.triangles[0].v0.x,
            b.triangles[0].v0.y,
        )

    def test_depth_complexity_hits_target(self):
        scene = generate_scene(small_spec(depth_complexity=3.0))
        stats = scene.statistics()
        assert stats.depth_complexity == pytest.approx(3.0, rel=0.25)

    def test_pixels_per_triangle_in_range(self):
        scene = generate_scene(small_spec(pixels_per_triangle=50.0))
        stats = scene.statistics()
        assert 20 <= stats.pixels_per_triangle <= 80

    def test_magnified_scene_has_low_unique_ratio(self):
        magnified = generate_scene(small_spec(texel_scale=0.25, texture_edges=((16, 1.0),)))
        minified = generate_scene(small_spec(texel_scale=2.0, texture_edges=((256, 1.0),)))
        ratio_mag = magnified.statistics().unique_texel_to_fragment
        ratio_min = minified.statistics().unique_texel_to_fragment
        assert ratio_mag < ratio_min

    def test_texture_count_respected(self):
        scene = generate_scene(small_spec(num_textures=7))
        assert len(scene.textures) == 7

    def test_all_triangles_reference_valid_textures(self):
        scene = generate_scene(small_spec())
        for triangle in scene.triangles:
            assert 0 <= triangle.texture < len(scene.textures)


class TestVisibleArea:
    def test_fully_inside(self):
        square = [(10, 10), (20, 10), (20, 20), (10, 20)]
        assert _visible_area(square, 64, 64) == pytest.approx(100.0)

    def test_half_clipped(self):
        square = [(-10, 0), (10, 0), (10, 10), (-10, 10)]
        assert _visible_area(square, 64, 64) == pytest.approx(100.0)

    def test_fully_outside(self):
        square = [(100, 100), (110, 100), (110, 110), (100, 110)]
        assert _visible_area(square, 64, 64) == 0.0


class TestMagnificationRemoval:
    def test_scales_textures_and_texel_scale_together(self):
        spec = small_spec(texel_scale=0.25, texture_edges=((16, 1.0), (32, 2.0)))
        fixed = remove_magnification(spec, 4)
        assert fixed.texture_edges == ((64, 1.0), (128, 2.0))
        assert fixed.texel_scale == pytest.approx(1.0)
        assert fixed.name.endswith("_x4")

    def test_leaves_minified_specs_alone(self):
        spec = small_spec(texel_scale=2.0)
        assert remove_magnification(spec, 4) is spec

    def test_never_overshoots_past_unity(self):
        spec = small_spec(texel_scale=0.5)
        fixed = remove_magnification(spec, 32)
        assert fixed.texel_scale == pytest.approx(1.0)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigurationError):
            remove_magnification(small_spec(texel_scale=0.5), 3)


class TestNamedScenes:
    def test_all_seven_scenes_defined(self):
        assert len(SCENE_NAMES) == 7
        assert set(SCENE_NAMES) == set(SCENE_SPECS)

    def test_unknown_scene_rejected(self):
        with pytest.raises(ConfigurationError):
            build_scene("doom")

    def test_build_is_memoised(self):
        a = build_scene("quake", scale=0.0625)
        b = build_scene("quake", scale=0.0625)
        assert a is b

    def test_screen_sizes_match_table_one(self):
        assert (SCENE_SPECS["room3"].screen_width, SCENE_SPECS["room3"].screen_height) == (1280, 1024)
        assert (SCENE_SPECS["quake"].screen_width, SCENE_SPECS["quake"].screen_height) == (1152, 870)
        assert SCENE_SPECS["truc640"].screen_width == 1600

    def test_unique_ratio_ordering_matches_table_one(self):
        """quake and teapot are compulsory-heavy; blowout/massive1 are
        the most reuse-heavy — the rank order of Table 1."""
        ratios = {
            name: build_scene(name, scale=0.0625).statistics().unique_texel_to_fragment
            for name in ("quake", "teapot_full", "massive32_1255", "massive1_1255", "blowout775")
        }
        assert ratios["quake"] > ratios["massive32_1255"] > ratios["massive1_1255"]
        assert ratios["teapot_full"] > ratios["massive32_1255"]
        assert ratios["blowout775"] < ratios["massive32_1255"]

    def test_depth_complexity_ranking(self):
        room = build_scene("room3", scale=0.0625).statistics().depth_complexity
        quake = build_scene("quake", scale=0.0625).statistics().depth_complexity
        assert room > 2 * quake


class TestExperimentScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert experiment_scale() == 0.25

    def test_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert experiment_scale() == 0.5

    def test_bad_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "zero")
        with pytest.raises(ConfigurationError):
            experiment_scale()
        monkeypatch.setenv("REPRO_SCALE", "2.0")
        with pytest.raises(ConfigurationError):
            experiment_scale()

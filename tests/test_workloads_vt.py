"""Tests for the VT workload family, its experiment and its job kind."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.service.jobs import execute_payload, spec_from_payload
from repro.workloads.vt import (
    VT_SCENE_SPECS,
    VtSceneSpec,
    require_vt_spec,
    run_vt_sequence,
    vt_frames,
)

SCALE = 0.0625
MACHINE = {"family": "block", "processors": 4, "size": 16}


@pytest.fixture(scope="module")
def quake_frames():
    return vt_frames(require_vt_spec("vt-quake"), SCALE)


# -- specs ------------------------------------------------------------


def test_vt_spec_validation():
    with pytest.raises(ConfigurationError):
        VtSceneSpec(name="x", base="quake", frames=0)
    with pytest.raises(ConfigurationError):
        VtSceneSpec(name="x", base="quake", page_lines=12)
    with pytest.raises(ConfigurationError):
        VtSceneSpec(name="x", base="quake", residency=0.0)
    with pytest.raises(ConfigurationError):
        VtSceneSpec(name="x", base="quake", texture_magnify=0)
    with pytest.raises(ConfigurationError):
        VtSceneSpec(name="x", base="no-such-scene").scene_spec()
    with pytest.raises(ConfigurationError):
        require_vt_spec("no-such-vt-scene")


def test_vt_scene_magnifies_texture_edges():
    spec = VT_SCENE_SPECS["vt-quake"]
    base = require_vt_spec("vt-quake").scene_spec()
    from repro.workloads.scenes import SCENE_SPECS

    original = SCENE_SPECS[spec.base]
    assert base.name == "vt-quake"
    for (edge, weight), (orig_edge, orig_weight) in zip(
        base.texture_edges, original.texture_edges
    ):
        assert edge == orig_edge * spec.texture_magnify
        assert weight == orig_weight


def test_all_vt_scenes_have_valid_bases():
    from repro.workloads.scenes import SCENE_SPECS

    for name, spec in VT_SCENE_SPECS.items():
        assert spec.name == name
        assert spec.base in SCENE_SPECS
        spec.scene_spec()  # must not raise


# -- the sequence runner ----------------------------------------------


def test_run_vt_sequence_shape_and_metrics(quake_frames):
    result = run_vt_sequence(
        "vt-quake", MACHINE, scale=SCALE, frames=2, scenes=quake_frames
    )
    assert len(result.frames) == 2
    assert result.total_cycles > 0
    assert result.distribution == "block16x4"
    for index, frame in enumerate(result.frames):
        assert frame.frame == index
        assert frame.cycles > 0
        assert frame.baseline_cycles >= frame.cycles
        assert 0.0 <= frame.miss_rate <= 1.0
        assert 0.0 <= frame.fault_rate <= 1.0
        assert frame.vt["resident_pages"] > 0
    assert "vt-quake" in result.summary()


def test_partial_residency_faults_then_warms(quake_frames):
    result = run_vt_sequence(
        "vt-quake", MACHINE, scale=SCALE, residency=0.5, scenes=quake_frames
    )
    assert result.frames[0].vt["fault_accesses"] > 0  # cold start faults
    # The pan revisits mostly-shared texels: faults drop as residency warms.
    assert result.frames[-1].fault_rate < result.frames[0].fault_rate


def test_paging_trajectory_is_distribution_independent(quake_frames):
    """Feedback comes from the submission-order stream, so every
    distribution family sees the identical residency trajectory."""
    runs = [
        run_vt_sequence(
            "vt-quake",
            {"family": family, "processors": 4, "size": size},
            scale=SCALE,
            frames=2,
            scenes=quake_frames,
        )
        for family, size in (("block", 16), ("sli", 2), ("morton", 16))
    ]
    reference = [frame.vt for frame in runs[0].frames]
    for run in runs[1:]:
        assert [frame.vt for frame in run.frames] == reference


def test_prebuilt_sequence_too_short_raises(quake_frames):
    with pytest.raises(ConfigurationError):
        run_vt_sequence(
            "vt-quake", MACHINE, scale=SCALE, frames=5, scenes=quake_frames[:1]
        )


@pytest.mark.slow
def test_fully_resident_sequence_never_faults(quake_frames):
    result = run_vt_sequence(
        "vt-quake", MACHINE, scale=SCALE, residency=1.0, scenes=quake_frames
    )
    for frame in result.frames:
        assert frame.vt["fault_accesses"] == 0
        assert frame.vt["paged_in"] == 0
        assert frame.vt["evicted"] == 0


# -- the experiment ---------------------------------------------------


def test_vt_distribution_experiment_text(quake_frames):
    from repro.analysis.experiments.vt import vt_distribution

    text = vt_distribution(
        SCALE, scenes=("vt-quake",), pages=(16,), residencies=(0.5,), processors=4
    )
    assert "distribution" in text
    for described in ("block16x4", "bands", "sli", "morton16x4"):
        assert described in text
    assert "16-line pages" in text


def test_vt_distribution_is_registered():
    from repro.analysis.experiments.registry import EXPERIMENTS
    from repro.expfw.spec import require_spec

    assert "vt-distribution" in EXPERIMENTS
    spec = require_spec("vt-distribution")
    assert spec.trial is not None
    axes = spec.trial.axes_for(spec.resolve({}))
    assert set(axes) == {"family", "size", "cache_kb", "vt_pages", "vt_residency"}


# -- the job kind -----------------------------------------------------


def test_vt_job_spec_roundtrip():
    payload = {
        "vt_scene": "vt-quake",
        "scale": SCALE,
        "family": "morton",
        "processors": 4,
        "size": 8,
        "vt_pages": 8,
        "vt_residency": 0.25,
        "vt_frames": 2,
    }
    spec = spec_from_payload(payload)
    assert spec.kind == "vt"
    assert spec_from_payload(spec.to_payload()) == spec
    assert spec.result_key().startswith("vt/vt-quake@")
    assert spec.result_key() == spec_from_payload(payload).result_key()


def test_vt_job_validation():
    with pytest.raises(ConfigurationError):
        spec_from_payload({"vt_scene": "no-such", "scale": SCALE})
    with pytest.raises(ConfigurationError):
        spec_from_payload({"vt_scene": "vt-quake", "scene": "quake"})
    with pytest.raises(ConfigurationError):
        spec_from_payload({"vt_scene": "vt-quake", "vt_pages": 12})
    with pytest.raises(ConfigurationError):
        spec_from_payload({"vt_scene": "vt-quake", "vt_residency": 0.0})
    with pytest.raises(ConfigurationError):
        spec_from_payload({"vt_scene": "vt-quake", "vt_frames": 0})


def test_morton_family_accepted_for_simulate_jobs():
    spec = spec_from_payload({"scene": "quake", "family": "morton", "scale": SCALE})
    assert spec.family == "morton"


def test_vt_job_executes_with_metrics():
    out = execute_payload(
        {
            "vt_scene": "vt-quake",
            "scale": SCALE,
            "family": "block",
            "processors": 4,
            "vt_frames": 2,
            "vt_residency": 0.5,
        }
    )
    metrics = out["metrics"]
    for key in ("cycles", "baseline_cycles", "speedup", "miss_rate", "fault_rate"):
        assert key in metrics
    assert metrics["speedup"] > 0
    assert np.isfinite(metrics["cycles"])


# -- the auto-search --------------------------------------------------


@pytest.mark.slow
def test_vt_search_smoke(tmp_path):
    from repro.expfw.archive import RunArchive
    from repro.expfw.search import SearchConfig, run_search

    config = SearchConfig(
        experiment="vt-distribution",
        budget=600.0,
        unit="seconds",
        strategy="grid",
        seed=11,
        overrides={"scale": SCALE},
        max_trials=2,
        wave=2,
    )
    report = run_search(config, archive=RunArchive(str(tmp_path)))
    assert report["winner"] is not None
    assert report["winner"]["metrics"]["speedup"] > 0
    assert len(report["trials"]) == 2
    payload = report["winner"]["payload"]
    assert payload["vt_scene"] == "vt-quake"
    assert payload["scale"] == SCALE
